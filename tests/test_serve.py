"""Serving-layer tests: settings, metrics exposition, the time
bridge, virtual-time replay determinism, and the asyncio gateway."""

import asyncio
import json
import math

import pytest

from repro.common.errors import ConfigError
from repro.serve.bridge import SimBridge
from repro.serve.gateway import Gateway, TokenBucket
from repro.serve.metrics import (
    Histogram,
    MetricsRegistry,
    parse_samples,
)
from repro.serve.ops import ArrivalTrace, TimedOp, merge_sorted
from repro.serve.settings import ServeSettings
from repro.sim.stats import Samples


# ----------------------------------------------------------------------
# settings
# ----------------------------------------------------------------------


class TestSettings:
    def test_defaults_validate(self):
        ServeSettings.from_env(environ={})

    def test_env_layering(self):
        s = ServeSettings.from_env(
            environ={
                "REPRO_SERVE_PORT": "9000",
                "REPRO_SERVE_MODE": "paced",
                "REPRO_SERVE_TIME_SCALE": "2.5",
            }
        )
        assert (s.port, s.mode, s.time_scale) == (9000, "paced", 2.5)

    def test_overrides_beat_env(self):
        s = ServeSettings.from_env(
            environ={"REPRO_SERVE_PORT": "9000"}, port=9001
        )
        assert s.port == 9001

    def test_none_override_means_not_given(self):
        s = ServeSettings.from_env(
            environ={"REPRO_SERVE_PORT": "9000"}, port=None
        )
        assert s.port == 9000

    def test_bad_env_value_rejected(self):
        with pytest.raises(ConfigError):
            ServeSettings.from_env(environ={"REPRO_SERVE_PORT": "nope"})

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigError):
            ServeSettings.from_env(environ={}, no_such_setting=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"port": 70000},
            {"mode": "warp"},
            {"time_scale": 0.0},
            {"request_timeout_ns": -1.0},
            {"txn_max_attempts": 0},
            {"max_sessions": 0},
            {"rate_limit_qps": -1.0},
            {"n_clients": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            ServeSettings.from_env(environ={}, **kwargs)

    def test_replication_clamped_to_shards(self):
        s = ServeSettings.from_env(environ={}, n_shards=1, replication=3)
        assert s.sharded_config().replication == 1


# ----------------------------------------------------------------------
# metrics exposition
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_labels(self):
        m = MetricsRegistry()
        c = m.counter("x_total", "help")
        c.inc(op="get")
        c.inc(2, op="get")
        c.inc(op="put")
        assert c.value(op="get") == 3
        samples = parse_samples(m.render())
        assert samples['x_total{op="get"}'] == 3
        assert samples['x_total{op="put"}'] == 1

    def test_counter_cannot_decrease(self):
        c = MetricsRegistry().counter("x", "help")
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_gauge_set_and_dec(self):
        m = MetricsRegistry()
        g = m.gauge("g", "help")
        g.set(5)
        g.dec()
        assert g.value() == 4

    def test_duplicate_name_rejected(self):
        m = MetricsRegistry()
        m.counter("dup", "help")
        with pytest.raises(ConfigError):
            m.gauge("dup", "help")

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", "help", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        lines = "\n".join(h.render())
        assert 'lat_bucket{le="10"} 1' in lines
        assert 'lat_bucket{le="100"} 2' in lines
        assert 'lat_bucket{le="+Inf"} 3' in lines
        assert "lat_count 3" in lines
        assert h.count() == 3

    def test_histogram_quantiles_match_samples(self):
        h = Histogram("lat", "help", buckets=(1e9,))
        s = Samples()
        for v in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0):
            h.observe(v)
            s.add(v)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(s.percentile(q * 100))

    def test_render_is_sorted_and_stable(self):
        m = MetricsRegistry()
        m.counter("zzz", "z").inc()
        m.counter("aaa", "a").inc()
        text = m.render()
        assert text.index("aaa") < text.index("zzz")
        assert text == m.render()
        assert text.endswith("\n")

    def test_volatile_excluded_on_request(self):
        m = MetricsRegistry()
        m.gauge("uptime", "wall", volatile=True).set(1.23)
        m.counter("stable", "ok").inc()
        assert "uptime" in m.render(include_volatile=True)
        assert "uptime" not in m.render(include_volatile=False)
        assert "stable" in m.render(include_volatile=False)

    def test_collector_samples_rendered(self):
        m = MetricsRegistry()
        m.add_collector(
            lambda: [("col_total", "counter", "h", {"shard": "0"}, 7.0)]
        )
        samples = parse_samples(m.render())
        assert samples['col_total{shard="0"}'] == 7


# ----------------------------------------------------------------------
# request vocabulary
# ----------------------------------------------------------------------


class TestOps:
    def test_op_validation(self):
        with pytest.raises(ConfigError):
            TimedOp(op_id=0, at_ns=0.0, kind="scan", key="k")
        with pytest.raises(ConfigError):
            TimedOp(op_id=0, at_ns=0.0, kind="get")
        with pytest.raises(ConfigError):
            TimedOp(op_id=0, at_ns=-1.0, kind="get", key="k")
        with pytest.raises(ConfigError):
            TimedOp(op_id=0, at_ns=0.0, kind="txn")

    def test_op_round_trip(self):
        op = TimedOp(
            op_id=3, at_ns=10.0, kind="txn", read_keys=("a",), write_keys=("b",)
        )
        assert TimedOp.from_dict(op.to_dict()) == op

    def test_trace_must_be_sorted(self):
        ops = [
            TimedOp(op_id=0, at_ns=10.0, kind="get", key="a"),
            TimedOp(op_id=1, at_ns=5.0, kind="get", key="b"),
        ]
        with pytest.raises(ConfigError):
            ArrivalTrace(ops=ops)

    def test_trace_span_and_merge(self):
        t1 = ArrivalTrace(
            ops=[TimedOp(op_id=0, at_ns=0.0, kind="get", key="a")],
            offered_qps=10.0,
        )
        t2 = ArrivalTrace(
            ops=[TimedOp(op_id=0, at_ns=5.0, kind="put", key="b")],
            offered_qps=20.0,
        )
        merged = merge_sorted([t1, t2])
        assert [op.op_id for op in merged.ops] == [0, 1]
        assert merged.span_ns == 5.0
        assert merged.offered_qps == 30.0


# ----------------------------------------------------------------------
# the time bridge
# ----------------------------------------------------------------------


def _trace(bridge, spec):
    """spec: list of (at_ns, kind, key-or-(reads, writes)) tuples."""
    ops = []
    for i, (at, kind, what) in enumerate(spec):
        if kind == "txn":
            ops.append(
                TimedOp(
                    op_id=i,
                    at_ns=at,
                    kind=kind,
                    read_keys=what[0],
                    write_keys=what[1],
                )
            )
        else:
            ops.append(TimedOp(op_id=i, at_ns=at, kind=kind, key=what))
    return ArrivalTrace(ops=ops, offered_qps=1000.0, seed=1)


class TestBridge:
    def test_warm_reads_every_member_shard(self):
        bridge = SimBridge(ServeSettings())
        assert not bridge.ready
        consumed = bridge.warm()
        assert bridge.ready
        assert consumed == len(bridge.kv.member_shards())

    def test_op_statuses(self):
        bridge = SimBridge(ServeSettings())
        bridge.warm()
        keys = bridge.kv.keys()
        report = bridge.replay(
            _trace(
                bridge,
                [
                    (0.0, "get", keys[0]),
                    (100.0, "put", keys[1]),
                    (200.0, "txn", ((keys[0],), (keys[2],))),
                    (300.0, "get", "no-such-key"),
                ],
            )
        )
        by_id = {r.op.op_id: r for r in report.results}
        assert by_id[0].status == "ok"
        assert by_id[0].detail["version"] is not None
        assert by_id[1].status == "ok"
        assert by_id[2].status == "ok"
        assert by_id[2].detail["attempts"] == 1
        assert by_id[3].status == "not_found"
        assert report.n_ok == 3 and report.n_errors == 1
        assert report.errors_by_status == {"not_found": 1}

    def test_deadline_counts_from_arrival(self):
        # Two simultaneous arrivals through one session and a budget
        # smaller than one read: the queued op's budget is consumed by
        # *waiting*, so it must answer timeout without ever touching
        # the cluster — the deadline starts at arrival, not dispatch.
        bridge = SimBridge(
            ServeSettings(max_sessions=1, request_timeout_ns=1.0)
        )
        bridge.warm()
        report = bridge.replay(
            _trace(bridge, [(0.0, "get", "key-0"), (0.0, "get", "key-1")])
        )
        statuses = sorted(r.status for r in report.results)
        assert statuses == ["ok", "timeout"]

    def test_bounded_pool_queues_fifo(self):
        bridge = SimBridge(ServeSettings(max_sessions=1))
        bridge.warm()
        keys = [f"key-{i}" for i in range(8)]
        report = bridge.replay(
            _trace(bridge, [(0.0, "get", k) for k in keys])
        )
        assert report.n_ok == len(keys)
        waits = bridge.metrics.get("repro_session_waits_total")
        assert waits.value(pool="reader") > 0
        # FIFO: completion order follows arrival (op_id) order.
        finished = [r.op.op_id for r in report.results]
        assert finished == sorted(finished)

    def test_overload_answers_timeout_not_backlog(self):
        bridge = SimBridge(
            ServeSettings(max_sessions=1, request_timeout_ns=2_000.0)
        )
        bridge.warm()
        # 64 simultaneous arrivals through one session: most of the
        # queue must burn its whole budget waiting and answer 504.
        report = bridge.replay(
            _trace(bridge, [(0.0, "get", f"key-{i}") for i in range(64)])
        )
        assert report.errors_by_status.get("timeout", 0) > 0
        assert report.n_ok + report.n_errors == 64

    def test_metrics_export_per_shard_counters(self):
        bridge = SimBridge(ServeSettings())
        bridge.warm()
        bridge.replay(_trace(bridge, [(0.0, "get", "key-0")]))
        samples = parse_samples(bridge.metrics_snapshot())
        for series in (
            'repro_shard_reads_routed{shard="0"}',
            'repro_shard_undetected_violations{shard="0"}',
            'repro_shard_busy_rejects{shard="0"}',
            'repro_shard_fallback_reads{shard="0"}',
            'repro_shard_reshard_redirects{shard="0"}',
            'repro_txn_commits{shard="0"}',
            "repro_partition_refusals_total",
            'repro_requests_total{code="ok",op="get"}',
        ):
            assert series in samples, series

    def test_txn_conflict_maps_to_conflict_status(self):
        bridge = SimBridge(ServeSettings(txn_max_attempts=1))
        bridge.warm()
        keys = bridge.kv.keys()
        # Two same-instant transactions over the same write key: with
        # one attempt allowed, a lock conflict surfaces as `conflict`.
        trace = _trace(
            bridge,
            [
                (0.0, "txn", ((), (keys[0], keys[1]))),
                (0.0, "txn", ((), (keys[1], keys[0]))),
            ],
        )
        report = bridge.replay(trace)
        statuses = sorted(r.status for r in report.results)
        assert statuses in (["conflict", "ok"], ["ok", "ok"])


class TestReplayDeterminism:
    @pytest.mark.smoke
    def test_same_seed_same_trace_byte_identical_metrics(self):
        """The tentpole determinism claim: same seed + same recorded
        arrival trace in load-test (virtual-time) mode produce a
        byte-identical metrics snapshot — including the full latency
        histogram — across two runs."""
        spec = [(i * 500.0, ("get", "put", "txn")[i % 3], None) for i in range(60)]
        snapshots = []
        reports = []
        for _ in range(2):
            bridge = SimBridge(ServeSettings(seed=7))
            bridge.warm()
            keys = bridge.kv.keys()
            ops = []
            for i, (at, kind, _) in enumerate(spec):
                if kind == "txn":
                    ops.append(
                        TimedOp(
                            op_id=i,
                            at_ns=at,
                            kind=kind,
                            read_keys=(keys[i % 5],),
                            write_keys=(keys[5 + i % 5],),
                        )
                    )
                else:
                    ops.append(
                        TimedOp(
                            op_id=i, at_ns=at, kind=kind, key=keys[i % 16]
                        )
                    )
            trace = ArrivalTrace(ops=ops, offered_qps=2_000_000.0, seed=7)
            reports.append(bridge.replay(trace))
            snapshots.append(bridge.metrics_snapshot())
        assert snapshots[0] == snapshots[1]
        assert "repro_request_virtual_ns_bucket" in snapshots[0]
        assert reports[0].to_row() == reports[1].to_row()

    def test_different_seed_differs(self):
        # Guards against the test above passing vacuously (e.g. an
        # empty snapshot comparing equal).
        rows = []
        for seed in (1, 2):
            bridge = SimBridge(ServeSettings(seed=seed))
            bridge.warm()
            trace = ArrivalTrace(
                ops=[
                    TimedOp(op_id=i, at_ns=i * 100.0, kind="get", key=f"key-{i}")
                    for i in range(20)
                ],
                offered_qps=1000.0,
                seed=seed,
            )
            rows.append(bridge.replay(trace).to_row())
        assert rows[0] != rows[1]


# ----------------------------------------------------------------------
# the gateway (socket level)
# ----------------------------------------------------------------------


async def _http(host, port, method, path, body=b"", keep=None):
    """One request; returns (status, parsed-or-raw body, conn)."""
    if keep is None:
        reader, writer = await asyncio.open_connection(host, port)
    else:
        reader, writer = keep
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\nConnection: keep-alive\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readuntil(b"\r\n\r\n")
    status = int(status_line.split(b" ", 2)[1])
    length = 0
    for line in status_line.decode("latin-1").split("\r\n"):
        if line.lower().startswith("content-length:"):
            length = int(line.split(":", 1)[1])
    raw = await reader.readexactly(length)
    try:
        payload = json.loads(raw)
    except ValueError:
        payload = raw.decode("utf-8", "replace")
    return status, payload, (reader, writer)


def _gateway_settings(**overrides):
    overrides.setdefault("port", 0)
    overrides.setdefault("drain_timeout_s", 5.0)
    return ServeSettings.from_env(environ={}, **overrides)


async def _booted(settings):
    gw = Gateway(settings)
    await gw.start()
    # Wait until warmup flips readiness (the driver warms on start).
    for _ in range(200):
        if gw.bridge.ready:
            break
        await asyncio.sleep(0.01)
    return gw


class TestGateway:
    def test_readyz_flips_false_then_true(self):
        async def scenario():
            gw = Gateway(_gateway_settings(warmup_delay_s=0.3))
            await gw.start()
            host, port = gw.settings.host, gw.port
            early, payload, conn = await _http(host, port, "GET", "/readyz")
            conn[1].close()
            assert early == 503 and payload["status"] == "warming"
            for _ in range(300):
                status, payload, conn = await _http(host, port, "GET", "/readyz")
                conn[1].close()
                if status == 200:
                    break
                await asyncio.sleep(0.02)
            assert status == 200 and payload["status"] == "ready"
            healthz, _, conn = await _http(host, port, "GET", "/healthz")
            conn[1].close()
            assert healthz == 200
            await gw.drain()

        asyncio.run(scenario())

    def test_object_and_txn_round_trip(self):
        async def scenario():
            gw = await _booted(_gateway_settings())
            host, port = gw.settings.host, gw.port
            status, body, conn = await _http(host, port, "GET", "/v1/obj/key-3")
            assert status == 200 and body["status"] == "ok"
            assert body["kind"] == "get" and "latency_ns" in body
            # Keep-alive: reuse the same connection for the write.
            status, body, conn = await _http(
                host, port, "PUT", "/v1/obj/key-3", keep=conn
            )
            assert status == 200 and body["kind"] == "put"
            txn = json.dumps(
                {"read_keys": ["key-1"], "write_keys": ["key-2"]}
            ).encode()
            status, body, conn = await _http(
                host, port, "POST", "/v1/txn", body=txn, keep=conn
            )
            assert status == 200 and body["kind"] == "txn"
            conn[1].close()
            await gw.drain()

        asyncio.run(scenario())

    def test_error_statuses(self):
        async def scenario():
            gw = await _booted(_gateway_settings())
            host, port = gw.settings.host, gw.port
            cases = [
                ("GET", "/v1/obj/no-such-key", b"", 404),
                ("DELETE", "/v1/obj/key-1", b"", 405),
                ("GET", "/v1/txn", b"", 405),
                ("POST", "/v1/txn", b"{}", 400),
                ("POST", "/v1/txn", b"not json", 400),
                ("GET", "/nope", b"", 404),
            ]
            for method, path, body, expected in cases:
                status, _, conn = await _http(host, port, method, path, body)
                conn[1].close()
                assert status == expected, (method, path, status)
            await gw.drain()

        asyncio.run(scenario())

    def test_rate_limit_answers_429(self):
        async def scenario():
            gw = await _booted(
                _gateway_settings(rate_limit_qps=0.5, rate_limit_burst=1.0)
            )
            host, port = gw.settings.host, gw.port
            first, _, conn = await _http(host, port, "GET", "/v1/obj/key-0")
            second, _, conn = await _http(
                host, port, "GET", "/v1/obj/key-0", keep=conn
            )
            conn[1].close()
            assert first == 200
            assert second == 429
            status, text, conn = await _http(host, port, "GET", "/metrics")
            conn[1].close()
            assert status == 200
            assert parse_samples(text)["repro_rate_limited_total"] >= 1
            await gw.drain()

        asyncio.run(scenario())

    def test_metrics_scrape_exposes_cluster_counters(self):
        async def scenario():
            gw = await _booted(_gateway_settings())
            host, port = gw.settings.host, gw.port
            await _http(host, port, "GET", "/v1/obj/key-0")
            status, text, conn = await _http(host, port, "GET", "/metrics")
            conn[1].close()
            assert status == 200
            samples = parse_samples(text)
            assert samples['repro_requests_total{code="ok",op="get"}'] >= 1
            assert 'repro_shard_reads_routed{shard="0"}' in samples
            assert "repro_uptime_seconds" in samples
            await gw.drain()

        asyncio.run(scenario())

    def test_drain_rejects_new_work_and_flushes_artifact(self, tmp_path):
        art = tmp_path / "final.prom"

        async def scenario():
            gw = await _booted(_gateway_settings(metrics_artifact=str(art)))
            host, port = gw.settings.host, gw.port
            await _http(host, port, "GET", "/v1/obj/key-0")
            gw._draining = True
            status, payload = await gw._dispatch("GET", "/v1/obj/key-0", b"")
            assert status == 503
            ready, payload = await gw._dispatch("GET", "/readyz", b"")
            assert ready == 503 and payload["status"] == "draining"
            await gw.drain()

        asyncio.run(scenario())
        text = art.read_text()
        assert 'repro_requests_total{code="ok",op="get"} 1' in text
        # The artifact is the deterministic (non-volatile) rendering.
        assert "repro_uptime_seconds" not in text


class TestTokenBucket:
    def test_disabled_always_allows(self):
        clock = lambda: 0.0
        bucket = TokenBucket(0.0, 1.0, clock)
        assert all(bucket.allow() for _ in range(100))

    def test_burst_then_refill(self):
        now = {"t": 0.0}
        bucket = TokenBucket(10.0, 2.0, lambda: now["t"])
        assert bucket.allow() and bucket.allow()
        assert not bucket.allow()
        now["t"] += 0.1  # one token refilled
        assert bucket.allow()
        assert not bucket.allow()

"""Unit tests for the per-chip memory system + coherence directory."""

import pytest

from repro.common.config import NodeConfig
from repro.mem.system import AccessTier, ChipMemorySystem, InvalidationCause
from repro.noc.mesh import Mesh


@pytest.fixture
def chip():
    from repro.sim.engine import Simulator

    sim = Simulator()
    cfg = NodeConfig()
    mesh = Mesh(cfg.noc)
    return ChipMemorySystem(sim, cfg, mesh)


def _alloc_block(chip):
    return chip.phys.allocate(64)


class TestReadTiers:
    def test_cold_read_goes_to_memory(self, chip):
        addr = _alloc_block(chip)
        done, tier = chip.read_block(0, addr)
        assert tier is AccessTier.MEM
        # DRAM array latency + controller overhead alone exceed 70 ns.
        assert done >= 70.0

    def test_second_read_hits_llc(self, chip):
        addr = _alloc_block(chip)
        chip.read_block(0, addr)
        done, tier = chip.read_block(0, addr)
        assert tier is AccessTier.LLC
        assert done < 30.0

    def test_read_after_write_forwards_from_l1(self, chip):
        addr = _alloc_block(chip)
        chip.write_block(3, addr, b"\xab" * 64)
        done, tier = chip.read_block(0, addr)
        assert tier is AccessTier.L1
        # The forwarded copy lands in the LLC (M->S downgrade).
        _, tier2 = chip.read_block(0, addr)
        assert tier2 is AccessTier.LLC

    def test_memory_latency_near_90ns(self, chip):
        """§5.1 quotes ~90 ns average memory access latency."""
        total = 0.0
        n = 64
        for i in range(n):
            addr = chip.phys.allocate(64)
            done, tier = chip.read_block(i % 16, addr)
            assert tier is AccessTier.MEM
            total += done - chip.sim.now
        avg = total / n
        assert 70.0 <= avg <= 110.0


class TestWrites:
    def test_write_updates_bytes_immediately(self, chip):
        addr = _alloc_block(chip)
        chip.write_block(0, addr, b"Z" * 64)
        assert chip.read_bytes(addr, 64) == b"Z" * 64

    def test_write_hit_on_own_m_copy_is_cheap(self, chip):
        addr = _alloc_block(chip)
        first = chip.write_block(0, addr)
        second = chip.write_block(0, addr)
        assert second < first

    def test_oversized_write_rejected(self, chip):
        addr = _alloc_block(chip)
        with pytest.raises(ValueError):
            chip.write_block(0, addr, b"x" * 65)

    def test_ownership_migrates_between_cores(self, chip):
        addr = _alloc_block(chip)
        chip.write_block(0, addr)
        chip.write_block(1, addr)
        assert chip.tier_of(addr) is AccessTier.L1

    def test_write_bytes_spans_blocks(self, chip):
        base = chip.phys.allocate(256)
        chip.write_bytes(0, base + 32, b"q" * 100)
        assert chip.read_bytes(base + 32, 100) == b"q" * 100


class TestSnooping:
    def test_write_invalidation_delivered_synchronously(self, chip):
        addr = _alloc_block(chip)
        events = []
        chip.subscribe(addr, lambda b, c: events.append((b, c)))
        chip.write_block(0, addr)
        assert events == [(addr, InvalidationCause.WRITE)]

    def test_unsubscribe_stops_delivery(self, chip):
        addr = _alloc_block(chip)
        events = []

        def snoop(b, c):
            events.append(b)

        chip.subscribe(addr, snoop)
        chip.unsubscribe(addr, snoop)
        chip.write_block(0, addr)
        assert events == []
        assert chip.subscriber_count(addr) == 0

    def test_unrelated_block_not_notified(self, chip):
        a = _alloc_block(chip)
        b = _alloc_block(chip)
        events = []
        chip.subscribe(a, lambda blk, c: events.append(blk))
        chip.write_block(0, b)
        assert events == []

    def test_eviction_invalidation(self, chip):
        """Filling the LLC past capacity evicts the oldest block and
        notifies its subscribers with cause EVICTION (§4.2 false alarm)."""
        first = chip.phys.allocate(64)
        events = []
        chip.read_block(0, first)  # bring into LLC
        chip.subscribe(first, lambda b, c: events.append((b, c)))
        region = chip.phys.allocate(64 * (chip.llc.capacity + 8))
        for i in range(chip.llc.capacity + 8):
            chip.read_block(0, region + 64 * i)
        assert (first, InvalidationCause.EVICTION) in events

    def test_multiple_subscribers_all_notified(self, chip):
        addr = _alloc_block(chip)
        hits = []
        chip.subscribe(addr, lambda b, c: hits.append("a"))
        chip.subscribe(addr, lambda b, c: hits.append("b"))
        chip.write_block(0, addr)
        assert sorted(hits) == ["a", "b"]


class TestBandwidthContention:
    def test_streaming_reads_queue_on_channels(self, chip):
        """Reading far more blocks than channels must take at least
        total_bytes / total_bandwidth."""
        n = 512
        base = chip.phys.allocate(64 * n)
        last = 0.0
        for i in range(n):
            done, _ = chip.read_block(0, base + 64 * i)
            last = max(last, done)
        floor = (n * 64) / chip.dram.total_rate
        assert last >= floor

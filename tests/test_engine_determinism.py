"""Cross-scheduler determinism: the calendar scheduler must dispatch in
exactly the binary-heap order, making every registered experiment's
artifact byte-identical under either engine.

The tier-1 lane runs a representative spec subset at a tiny scale
across >=3 seeds; the ``slow`` (nightly) lane sweeps *every* registered
spec.  Comparison is on the serialized JSON artifact bytes (the sweep's
``to_json_dict``) with only the wall-clock field masked.
"""

import json
import os

import pytest

from repro.experiments import registry
from repro.experiments.runner import run_sweep
from repro.sim.engine import SCHEDULER_ENV, Simulator
from repro.workloads.fuzz import fuzz_round

SEEDS = (1, 7, 23)

#: Tier-1 subset: the flagship service workloads plus one figure and
#: one ablation spec (cheap but structurally diverse).
SMOKE_SPECS = (
    "ycsb_latency",
    "txn_abort_rate",
    "failover_availability",
    "fig7a",
)

#: Specs too heavy for a tiny-scale tier-1 matrix; the slow lane covers
#: them with the full registry sweep.
SLOW_ONLY_SCALE = 0.02


def _artifact_bytes(spec_name: str, engine: str, seed: int, scale: float) -> bytes:
    os.environ[SCHEDULER_ENV] = engine
    try:
        result = run_sweep(registry.get(spec_name), scale=scale, base_seed=seed)
    finally:
        os.environ.pop(SCHEDULER_ENV, None)
    payload = result.to_json_dict()
    payload["elapsed_s"] = 0.0  # wall clock: the one legitimately varying field
    return json.dumps(payload, sort_keys=True).encode()


def test_schedulers_are_selectable():
    assert Simulator().scheduler == "calendar"
    assert Simulator(scheduler="heap").scheduler == "heap"
    os.environ[SCHEDULER_ENV] = "heap"
    try:
        assert Simulator().scheduler == "heap"
    finally:
        os.environ.pop(SCHEDULER_ENV, None)


@pytest.mark.parametrize("spec_name", SMOKE_SPECS)
def test_calendar_matches_heap_artifacts(spec_name):
    for seed in SEEDS:
        heap = _artifact_bytes(spec_name, "heap", seed, SLOW_ONLY_SCALE)
        calendar = _artifact_bytes(spec_name, "calendar", seed, SLOW_ONLY_SCALE)
        assert heap == calendar, (spec_name, seed)


def test_fuzz_rounds_identical_across_engines():
    """The randomized crash-lane interleavings — the most
    schedule-sensitive workload in the repo — must be fingerprint-
    identical under both engines."""
    for seed in (505, 616):
        os.environ[SCHEDULER_ENV] = "heap"
        try:
            a = fuzz_round("sabre", 4, seed=seed, duration_ns=40_000.0,
                           crash_cycles=3)
        finally:
            os.environ.pop(SCHEDULER_ENV, None)
        b = fuzz_round("sabre", 4, seed=seed, duration_ns=40_000.0,
                       crash_cycles=3)
        assert a.fingerprint == b.fingerprint, seed


@pytest.mark.slow
@pytest.mark.parametrize("spec_name", sorted(set(registry.names())))
def test_every_registered_spec_is_engine_invariant(spec_name):
    """Nightly lane: the full registry, three seeds, both engines."""
    for seed in SEEDS:
        heap = _artifact_bytes(spec_name, "heap", seed, SLOW_ONLY_SCALE)
        calendar = _artifact_bytes(spec_name, "calendar", seed, SLOW_ONLY_SCALE)
        assert heap == calendar, (spec_name, seed)

"""Tests for RPC over soNUMA messaging."""

import pytest

from repro.common.errors import ProtocolError
from repro.sonuma.node import Cluster
from repro.sonuma.rpc import RpcEndpoint


def make_pair():
    cluster = Cluster()
    a = RpcEndpoint(cluster.node(0), workers=1)
    b = RpcEndpoint(cluster.node(1), workers=1)
    return cluster, a, b


def test_round_trip():
    cluster, a, b = make_pair()
    a.register("echo", lambda payload: (payload[::-1], 10.0))
    replies = []

    def client():
        reply = yield b.call(0, "echo", b"hello")
        replies.append(reply)

    cluster.sim.process(client())
    cluster.run()
    assert replies == [b"olleh"]
    assert a.served == 1


def test_rpc_latency_includes_dispatch_and_service():
    cluster, a, b = make_pair()
    a.register("work", lambda payload: (b"", 500.0))
    times = []

    def client():
        yield b.call(0, "work", b"x")
        times.append(cluster.sim.now)

    cluster.sim.process(client())
    cluster.run()
    # 2 fabric hops (70 ns) + dispatch (180) + service (500) at least.
    assert times[0] >= 750.0


def test_workers_serialize_requests():
    cluster, a, b = make_pair()
    a.register("slow", lambda payload: (b"", 1000.0))
    finish = []

    def client(i):
        yield b.call(0, "slow", bytes([i]))
        finish.append(cluster.sim.now)

    for i in range(3):
        cluster.sim.process(client(i))
    cluster.run()
    assert len(finish) == 3
    # One worker: service periods cannot overlap.
    assert finish[1] - finish[0] >= 1000.0
    assert finish[2] - finish[1] >= 1000.0


def test_parallel_workers_overlap():
    cluster = Cluster()
    a = RpcEndpoint(cluster.node(0), workers=3)
    b = RpcEndpoint(cluster.node(1), workers=1)
    a.register("slow", lambda payload: (b"", 1000.0))
    finish = []

    def client(i):
        yield b.call(0, "slow", bytes([i]))
        finish.append(cluster.sim.now)

    for i in range(3):
        cluster.sim.process(client(i))
    cluster.run()
    assert max(finish) - min(finish) < 1000.0


def test_unknown_handler_raises():
    cluster, a, b = make_pair()
    calls = []

    def client():
        reply = yield b.call(0, "missing", b"")
        calls.append(reply)

    cluster.sim.process(client())
    with pytest.raises(ProtocolError):
        cluster.run()


def test_node_without_endpoint_rejects_rpc():
    cluster = Cluster()
    b = RpcEndpoint(cluster.node(1), workers=1)

    def client():
        yield b.call(0, "anything", b"")

    cluster.sim.process(client())
    with pytest.raises(ProtocolError):
        cluster.run()

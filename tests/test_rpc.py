"""Tests for RPC over soNUMA messaging."""

import pytest

from repro.common.errors import ProtocolError
from repro.sonuma.node import Cluster
from repro.sonuma.rpc import RpcEndpoint


def make_pair():
    cluster = Cluster()
    a = RpcEndpoint(cluster.node(0), workers=1)
    b = RpcEndpoint(cluster.node(1), workers=1)
    return cluster, a, b


def test_round_trip():
    cluster, a, b = make_pair()
    a.register("echo", lambda payload: (payload[::-1], 10.0))
    replies = []

    def client():
        reply = yield b.call(0, "echo", b"hello")
        replies.append(reply)

    cluster.sim.process(client())
    cluster.run()
    assert replies == [b"olleh"]
    assert a.served == 1


def test_rpc_latency_includes_dispatch_and_service():
    cluster, a, b = make_pair()
    a.register("work", lambda payload: (b"", 500.0))
    times = []

    def client():
        yield b.call(0, "work", b"x")
        times.append(cluster.sim.now)

    cluster.sim.process(client())
    cluster.run()
    # 2 fabric hops (70 ns) + dispatch (180) + service (500) at least.
    assert times[0] >= 750.0


def test_workers_serialize_requests():
    cluster, a, b = make_pair()
    a.register("slow", lambda payload: (b"", 1000.0))
    finish = []

    def client(i):
        yield b.call(0, "slow", bytes([i]))
        finish.append(cluster.sim.now)

    for i in range(3):
        cluster.sim.process(client(i))
    cluster.run()
    assert len(finish) == 3
    # One worker: service periods cannot overlap.
    assert finish[1] - finish[0] >= 1000.0
    assert finish[2] - finish[1] >= 1000.0


def test_parallel_workers_overlap():
    cluster = Cluster()
    a = RpcEndpoint(cluster.node(0), workers=3)
    b = RpcEndpoint(cluster.node(1), workers=1)
    a.register("slow", lambda payload: (b"", 1000.0))
    finish = []

    def client(i):
        yield b.call(0, "slow", bytes([i]))
        finish.append(cluster.sim.now)

    for i in range(3):
        cluster.sim.process(client(i))
    cluster.run()
    assert max(finish) - min(finish) < 1000.0


def test_generator_handler_yields_simulation_time():
    """A handler may be a generator: it yields events (timed work,
    nested calls) and returns the usual (reply, extra service) tuple."""
    cluster, a, b = make_pair()

    def handler(payload):
        yield cluster.sim.timeout(400.0)
        yield cluster.sim.timeout(300.0)
        return payload.upper(), 100.0

    a.register("timed", handler)
    done = []

    def client():
        reply = yield b.call(0, "timed", b"abc")
        done.append((cluster.sim.now, reply))

    cluster.sim.process(client())
    cluster.run()
    assert done[0][1] == b"ABC"
    # 2 fabric hops (70) + dispatch (180) + yields (700) + service (100).
    assert done[0][0] >= 1050.0
    assert a.served == 1


def test_generator_handler_holds_worker_while_running():
    cluster, a, b = make_pair()

    def slow(payload):
        yield cluster.sim.timeout(1000.0)
        return b"", 0.0

    a.register("slow_gen", slow)
    finish = []

    def client(i):
        yield b.call(0, "slow_gen", bytes([i]))
        finish.append(cluster.sim.now)

    for i in range(2):
        cluster.sim.process(client(i))
    cluster.run()
    # One worker: the generator's simulated time serializes requests.
    assert finish[1] - finish[0] >= 1000.0


def test_unknown_handler_raises():
    cluster, a, b = make_pair()
    calls = []

    def client():
        reply = yield b.call(0, "missing", b"")
        calls.append(reply)

    cluster.sim.process(client())
    with pytest.raises(ProtocolError):
        cluster.run()


def test_node_without_endpoint_rejects_rpc():
    cluster = Cluster()
    b = RpcEndpoint(cluster.node(1), workers=1)

    def client():
        yield b.call(0, "anything", b"")

    cluster.sim.process(client())
    with pytest.raises(ProtocolError):
        cluster.run()


def test_raising_handler_paths_never_strand_the_worker_pool():
    """Review regression: the flattened dispatcher must release the
    worker slot on *every* error path (the old generator server did so
    via try/finally).  A generator handler that falls off the end
    yields a None outcome whose unpack raises — the slot must come
    back so later RPCs still get served."""
    cluster, a, b = make_pair()

    def broken(payload: bytes):
        yield cluster.sim.timeout(5.0)
        # falls off the end: StopIteration value is None

    a.register("broken", broken)
    a.register("healthy", lambda payload: (b"ok", 0.0))
    b.call(0, "broken", b"x")
    with pytest.raises(TypeError):
        cluster.run()
    # The slot was released on the error path: a later healthy call is
    # served instead of queueing forever behind a leaked slot.
    done = b.call(0, "healthy", b"y")
    cluster.run()
    assert done.value == b"ok"


def test_watchdog_rearms_against_slow_but_alive_peer():
    """Gray-failure regression: a watchdog firing against a peer whose
    lease is intact must re-arm and keep waiting — the reply is still
    coming, and server-side effects (acquired locks) are real.  Failing
    the call would orphan them."""
    cluster, a, b = make_pair()
    a.service_multiplier = 20.0  # gray window: slow, not dead
    a.register("work", lambda payload: (b"done", 500.0))
    replies = []

    def client():
        reply = yield b.call(0, "work", b"x", timeout_ns=1_000.0)
        replies.append(reply)

    cluster.sim.process(client())
    cluster.run()
    # The reply arrived despite several watchdog deadlines passing.
    assert replies == [b"done"]
    assert b.timed_out_calls == 0
    assert b.failed_calls == 0
    assert b.watchdog_rearms > 0


def test_watchdog_still_fails_calls_to_a_dead_peer():
    """The re-arm path must not defeat the watchdog's purpose: once
    the peer's lease is genuinely gone, the call times out."""
    cluster, a, b = make_pair()
    a.register("work", lambda payload: (b"never", 50_000.0))
    cluster.sim.call_at(100.0, cluster.fabric.set_alive, 0, False)
    replies = []

    def client():
        reply = yield b.call(0, "work", b"x", timeout_ns=1_000.0)
        replies.append(reply)

    cluster.sim.process(client())
    cluster.run()
    from repro.common.errors import ShardCrashedError

    assert isinstance(replies[0], ShardCrashedError)
    assert b.timed_out_calls == 1

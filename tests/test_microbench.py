"""Tests for the microbenchmark workload driver."""

import pytest

from repro.common.config import ClusterConfig, SabreMode
from repro.common.errors import ConfigError
from repro.workloads.generators import CrewPartition, UniformPicker
from repro.workloads.microbench import (
    MicrobenchConfig,
    run_microbench,
)


class TestGenerators:
    def test_uniform_picker_covers_objects(self):
        picker = UniformPicker(range(10), seed=1)
        seen = {picker.pick() for _ in range(500)}
        assert seen == set(range(10))

    def test_uniform_picker_deterministic(self):
        a = [UniformPicker(range(10), seed=1).pick() for _ in range(20)]
        b = [UniformPicker(range(10), seed=1).pick() for _ in range(20)]
        assert a == b

    def test_uniform_picker_empty_rejected(self):
        with pytest.raises(ValueError):
            UniformPicker([], seed=1)

    def test_crew_partition_disjoint_and_complete(self):
        part = CrewPartition(range(100), writers=7)
        subsets = [part.subset(w) for w in range(7)]
        combined = [obj for s in subsets for obj in s]
        assert sorted(combined) == list(range(100))
        assert len(set(combined)) == 100

    def test_crew_zero_writers(self):
        part = CrewPartition(range(10), writers=0)
        assert part.subset(0) == []

    def test_crew_negative_rejected(self):
        with pytest.raises(ValueError):
            CrewPartition(range(10), writers=-1)


class TestConfigValidation:
    def test_unknown_mechanism(self):
        with pytest.raises(ConfigError):
            MicrobenchConfig(mechanism="nope").validate()

    def test_tiny_object(self):
        with pytest.raises(ConfigError):
            MicrobenchConfig(object_size=8).validate()

    def test_warmup_must_precede_end(self):
        with pytest.raises(ConfigError):
            MicrobenchConfig(duration_ns=100, warmup_ns=200).validate()

    def test_payload_len(self):
        assert MicrobenchConfig(object_size=128).payload_len == 120


def quick(mechanism, **kw):
    defaults = dict(
        mechanism=mechanism,
        object_size=256,
        n_objects=16,
        readers=2,
        writers=0,
        duration_ns=40_000.0,
        warmup_ns=5_000.0,
        seed=2,
    )
    defaults.update(kw)
    return run_microbench(MicrobenchConfig(**defaults))


class TestQuiescentRuns:
    @pytest.mark.parametrize(
        "mechanism", ["remote_read", "sabre", "percl_versions", "checksum"]
    )
    def test_no_writers_no_conflicts(self, mechanism):
        result = quick(mechanism)
        assert result.ops_completed > 10
        assert result.sabre_aborts == 0
        assert result.software_conflicts == 0
        assert result.retries == 0
        assert result.undetected_violations == 0

    def test_sabre_faster_than_percl(self):
        sabre = quick("sabre", object_size=2048)
        percl = quick("percl_versions", object_size=2048)
        assert sabre.mean_op_latency_ns < percl.mean_op_latency_ns

    def test_checksum_slowest(self):
        percl = quick("percl_versions", object_size=2048)
        checksum = quick("checksum", object_size=2048)
        assert checksum.mean_op_latency_ns > 2 * percl.mean_op_latency_ns

    def test_goodput_counts_only_measurement_window(self):
        result = quick("sabre")
        assert result.goodput_gbps > 0


class TestContendedRuns:
    def test_sabre_with_writers_detects_conflicts(self):
        result = quick("sabre", writers=4, n_objects=8, duration_ns=80_000.0)
        assert result.writer_updates > 0
        assert result.sabre_aborts > 0
        assert result.retries == result.sabre_aborts
        assert result.undetected_violations == 0

    def test_percl_with_writers_detects_conflicts(self):
        result = quick(
            "percl_versions", writers=4, n_objects=8, duration_ns=80_000.0
        )
        assert result.software_conflicts > 0
        assert result.undetected_violations == 0

    def test_locking_mode_never_aborts(self):
        result = quick(
            "sabre",
            writers=2,
            n_objects=16,
            duration_ns=80_000.0,
            writer_think_ns=500.0,
            cluster=ClusterConfig().with_sabre_mode(SabreMode.LOCKING),
        )
        assert result.sabre_aborts == 0
        assert result.undetected_violations == 0
        assert result.ops_completed > 0

    def test_no_speculation_safe_under_writers(self):
        result = quick(
            "sabre",
            writers=4,
            n_objects=8,
            duration_ns=80_000.0,
            cluster=ClusterConfig().with_sabre_mode(SabreMode.NO_SPECULATION),
        )
        assert result.undetected_violations == 0

    def test_async_window_transport_mode(self):
        result = quick("sabre", async_window=4, readers=4)
        assert result.ops_completed > 20
        assert result.goodput_gbps > 0

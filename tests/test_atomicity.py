"""Unit tests for mechanisms and lock tables."""

import pytest

from repro.atomicity.locks import LeaseLockTable, ReaderWriterLockTable
from repro.atomicity.mechanisms import (
    ChecksumMechanism,
    HardwareSabreMechanism,
    PerCacheLineMechanism,
    mechanism_by_name,
)
from repro.common.costs import DEFAULT_COSTS


class TestMechanisms:
    def test_factory(self):
        assert mechanism_by_name("sabre").hardware
        assert not mechanism_by_name("percl_versions").zero_copy
        with pytest.raises(ValueError):
            mechanism_by_name("nope")

    def test_percl_check_roundtrip(self):
        m = PerCacheLineMechanism()
        raw = m.layout.pack(2, b"d" * 100)
        assert m.check(raw, 100).ok

    def test_percl_cost_scales_with_wire_size(self):
        m = PerCacheLineMechanism()
        small = m.check_cost_ns(DEFAULT_COSTS, 128)
        large = m.check_cost_ns(DEFAULT_COSTS, 8192)
        assert large > small * 20  # roughly linear in size

    def test_percl_8kb_strip_cost_near_paper(self):
        """Fig. 1: stripping an 8 KB object costs on the order of 2 us."""
        cost = PerCacheLineMechanism().check_cost_ns(DEFAULT_COSTS, 8192)
        assert 1500.0 <= cost <= 3500.0

    def test_checksum_cost_dwarfs_percl(self):
        """§2.1: CRC64 is ~a dozen cycles/byte; stripping is far cheaper."""
        data_len = 4096
        crc = ChecksumMechanism().check_cost_ns(DEFAULT_COSTS, data_len)
        strip = PerCacheLineMechanism().check_cost_ns(DEFAULT_COSTS, data_len)
        assert crc > 5 * strip

    def test_sabre_check_is_free_and_zero_copy(self):
        m = HardwareSabreMechanism()
        assert m.zero_copy and m.hardware
        assert m.check_cost_ns(DEFAULT_COSTS, 8192) == 0.0

    def test_checksum_detects_corruption(self):
        m = ChecksumMechanism()
        raw = bytearray(m.layout.pack(0, b"data" * 8))
        raw[-1] ^= 1
        assert not m.check(bytes(raw), 32).ok


class TestReaderWriterLocks:
    def test_shared_readers(self):
        t = ReaderWriterLockTable()
        assert t.try_read_lock(0x100)
        assert t.try_read_lock(0x100)
        assert t.readers_of(0x100) == 2

    def test_writer_excludes_readers(self):
        t = ReaderWriterLockTable()
        assert t.try_write_lock(0x100)
        assert not t.try_read_lock(0x100)
        t.write_unlock(0x100)
        assert t.try_read_lock(0x100)

    def test_readers_exclude_writer(self):
        t = ReaderWriterLockTable()
        t.try_read_lock(0x100)
        assert not t.try_write_lock(0x100)
        t.read_unlock(0x100)
        assert t.try_write_lock(0x100)

    def test_unbalanced_unlock_raises(self):
        t = ReaderWriterLockTable()
        with pytest.raises(RuntimeError):
            t.read_unlock(0x1)
        with pytest.raises(RuntimeError):
            t.write_unlock(0x1)

    def test_independent_keys(self):
        t = ReaderWriterLockTable()
        assert t.try_write_lock(0x100)
        assert t.try_write_lock(0x200)

    def test_contention_counted(self):
        t = ReaderWriterLockTable()
        t.try_write_lock(0x1)
        t.try_read_lock(0x1)
        assert t.contended == 1


class TestLeaseLocks:
    def test_grant_and_expiry(self):
        t = LeaseLockTable(lease_ns=100.0)
        assert t.try_acquire(0x1, holder=1, now=0.0)
        assert not t.try_acquire(0x1, holder=2, now=50.0)
        assert t.try_acquire(0x1, holder=2, now=150.0)
        assert t.expired_grants == 1

    def test_release(self):
        t = LeaseLockTable(lease_ns=100.0)
        t.try_acquire(0x1, holder=1, now=0.0)
        t.release(0x1, holder=1)
        assert t.try_acquire(0x1, holder=2, now=1.0)

    def test_clock_skew_hazard(self):
        """With skewed clocks, the old holder still believes its lease is
        valid after the manager re-granted it — the §2.1 safety concern."""
        t = LeaseLockTable(lease_ns=100.0, clock_skew_ns=50.0)
        t.try_acquire(0x1, holder=1, now=0.0)
        assert t.try_acquire(0x1, holder=2, now=120.0)  # manager view: expired
        assert t.holder_believes_valid(0x1, holder=2, now=120.0)
        # Holder 1 is gone from the table, so its belief is moot; but in
        # the window before re-grant it believed the lease held:
        t2 = LeaseLockTable(lease_ns=100.0, clock_skew_ns=50.0)
        t2.try_acquire(0x1, holder=1, now=0.0)
        assert t2.holder_believes_valid(0x1, holder=1, now=120.0)

    def test_bad_lease_rejected(self):
        with pytest.raises(ValueError):
            LeaseLockTable(lease_ns=0.0)

"""Unit tests for cache-block / page address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address import (
    AddressRange,
    block_base,
    block_index,
    block_span,
    crosses_page_boundary,
)


def test_block_base():
    assert block_base(0) == 0
    assert block_base(63) == 0
    assert block_base(64) == 64
    assert block_base(130) == 128


def test_block_index():
    assert block_index(0) == 0
    assert block_index(64) == 1
    assert block_index(8191) == 127


def test_block_span_exact():
    assert block_span(0, 128) == [0, 64]
    assert block_span(0, 0) == []


def test_block_span_unaligned():
    # 60 bytes starting at offset 60 touch blocks 0 and 64.
    assert block_span(60, 60) == [0, 64]


def test_crosses_page_boundary():
    page = 4096
    assert not crosses_page_boundary(0, 4096, page)
    assert crosses_page_boundary(0, 4097, page)
    assert crosses_page_boundary(4090, 10, page)
    assert not crosses_page_boundary(4096, 10, page)
    assert not crosses_page_boundary(0, 0, page)


class TestAddressRange:
    def test_basic_properties(self):
        r = AddressRange(128, 256)
        assert r.end == 384
        assert r.contains(128)
        assert r.contains(383)
        assert not r.contains(384)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 10)
        with pytest.raises(ValueError):
            AddressRange(0, -1)

    def test_overlaps(self):
        a = AddressRange(0, 100)
        b = AddressRange(99, 10)
        c = AddressRange(100, 10)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_num_blocks_matches_blocks(self):
        r = AddressRange(60, 70)
        assert r.num_blocks() == len(r.blocks()) == 3

    def test_empty_range(self):
        r = AddressRange(64, 0)
        assert r.num_blocks() == 0
        assert list(r.iter_blocks()) == []

    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=1, max_value=1 << 16),
    )
    def test_blocks_cover_range(self, base, size):
        r = AddressRange(base, size)
        blocks = r.blocks()
        assert blocks == list(r.iter_blocks())
        assert blocks[0] <= base
        assert blocks[-1] + 64 >= r.end
        # Blocks are consecutive 64 B addresses.
        assert all(b - a == 64 for a, b in zip(blocks, blocks[1:]))

    @given(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=1, max_value=1 << 16),
    )
    def test_num_blocks_agrees(self, base, size):
        r = AddressRange(base, size)
        assert r.num_blocks() == len(r.blocks())

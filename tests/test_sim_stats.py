"""Unit tests for measurement utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Breakdown, Counter, Samples, ThroughputMeter


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("aborts")
        c.add("aborts", 2)
        assert c.get("aborts") == 3
        assert c.get("missing") == 0

    def test_as_dict_copies(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 100
        assert c.get("x") == 1


class TestSamples:
    def test_empty_stats_are_nan(self):
        s = Samples()
        assert math.isnan(s.mean)
        assert math.isnan(s.p50)
        assert math.isnan(s.max)

    def test_mean_and_total(self):
        s = Samples()
        s.extend([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.total == pytest.approx(6.0)
        assert len(s) == 3

    def test_percentiles(self):
        s = Samples()
        s.extend(range(101))
        assert s.p50 == pytest.approx(50.0)
        assert s.percentile(95) == pytest.approx(95.0)
        assert s.percentile(0) == 0.0
        assert s.percentile(100) == 100.0

    def test_percentile_bounds(self):
        s = Samples()
        s.add(1.0)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_min_max(self):
        s = Samples()
        s.extend([5.0, -2.0, 9.0])
        assert s.min == -2.0
        assert s.max == 9.0

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1))
    def test_percentile_within_range(self, values):
        s = Samples()
        s.extend(values)
        assert min(values) <= s.p50 <= max(values)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2),
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_percentile_monotone(self, values, p1, p2):
        s = Samples()
        s.extend(values)
        lo, hi = sorted((p1, p2))
        lo_val, hi_val = s.percentile(lo), s.percentile(hi)
        # Allow 1-ulp slack from floating-point interpolation.
        assert lo_val <= hi_val + 1e-9 * max(1.0, abs(lo_val), abs(hi_val))


class TestThroughputMeter:
    def test_only_counts_inside_window(self):
        m = ThroughputMeter()
        m.record(100)  # before start: ignored
        m.start(now=1000.0)
        m.record(64)
        m.record(64)
        m.stop(now=1128.0)
        m.record(100)  # after stop: ignored
        assert m.bytes_total == 128
        assert m.ops_total == 2
        assert m.gbps == pytest.approx(1.0)
        assert m.mops == pytest.approx(2 / 128 * 1e3)

    def test_zero_window(self):
        m = ThroughputMeter()
        assert m.gbps == 0.0
        assert m.mops == 0.0


class TestBreakdown:
    def test_means_and_shares(self):
        b = Breakdown(["transfer", "strip"])
        b.add_op(transfer=100.0, strip=50.0)
        b.add_op(transfer=200.0, strip=100.0)
        assert b.mean("transfer") == pytest.approx(150.0)
        assert b.total_mean == pytest.approx(225.0)
        assert b.share("strip") == pytest.approx(75.0 / 225.0)

    def test_unknown_component_rejected(self):
        b = Breakdown(["a"])
        with pytest.raises(KeyError):
            b.add("b", 1.0)

    def test_means_dict(self):
        b = Breakdown(["a", "b"])
        b.add("a", 2.0)
        b.add("b", 4.0)
        assert b.means() == {"a": 2.0, "b": 4.0}

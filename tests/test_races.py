"""Race reproduction tests.

These reproduce Fig. 2's reader-writer race deterministically: block 1
is made LLC-resident (fast reply) while block 0 (the header) is cold
(slow ~90 ns memory reply), and a writer commits a full update in the
gap between the two replies.  The naive overlap consumes torn data;
LightSABRes' stream-buffer snooping aborts instead.
"""

import dataclasses

import pytest

from repro.common.config import ClusterConfig, SabreMode
from repro.objstore.layout import RawLayout, stamped_payload, torn_words
from repro.objstore.store import ObjectStore
from repro.sonuma.node import Cluster


PAYLOAD_LEN = 100  # wire = 108 B -> 2 cache blocks


def build_race(mode):
    cluster = Cluster(ClusterConfig().with_sabre_mode(mode))
    dst, src = cluster.node(0), cluster.node(1)
    store = ObjectStore(dst.phys, RawLayout())
    store.create(1, stamped_payload(0, PAYLOAD_LEN), version=0)
    handle = store.handle(1)
    # Warm block 1 into the destination LLC so its SABRe read replies
    # quickly; block 0 stays memory-resident (~90 ns).
    dst.chip.read_block(0, handle.base_addr + 64)
    return cluster, dst, src, store, handle


def racing_writer(cluster, dst, store, at_ns=100.0):
    """Commit a full update (version 0 -> 2) instantaneously at
    ``at_ns``.

    With Table 2 timing the SABRe's block 1 (LLC hit) reply lands at
    ~75 ns and block 0's memory reply at ~143 ns; committing at 100 ns
    puts the update exactly inside Fig. 2's race window."""

    def write_now():
        steps, _v = store.update_steps(1, stamped_payload(2, PAYLOAD_LEN))
        for addr, chunk in steps:
            dst.chip.write_block(0, addr, chunk)

    cluster.sim.call_later(at_ns, write_now)


def run_sabre(cluster, src, handle):
    buf = src.alloc_buffer(handle.wire_size)
    results = []

    def proc():
        result = yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)
        results.append(result)

    cluster.sim.process(proc())
    cluster.run()
    raw = src.read_local(buf, handle.wire_size)
    strip = RawLayout().unpack(raw, PAYLOAD_LEN)
    return results[0], strip.data


class TestFig2Race:
    def test_naive_overlap_returns_torn_data_undetected(self):
        """The straw man of Fig. 2: reply reordering + a racing writer
        produce a success report for a torn read."""
        cluster, dst, src, store, handle = build_race(SabreMode.NAIVE_UNSAFE)
        racing_writer(cluster, dst, store)
        result, data = run_sabre(cluster, src, handle)
        assert result.success  # hardware wrongly reports atomicity
        torn, words = torn_words(data)
        assert torn  # ... but the payload mixes versions 0 and 2
        assert words == {0, 2}

    def test_lightsabres_detects_the_same_race(self):
        """Same schedule, speculative LightSABRes: the write to block 1
        invalidates a tracked stream-buffer entry during the window of
        vulnerability, so the SABRe aborts (§3.3)."""
        cluster, dst, src, store, handle = build_race(SabreMode.SPECULATIVE)
        racing_writer(cluster, dst, store)
        result, _data = run_sabre(cluster, src, handle)
        assert not result.success
        assert cluster.node(0).counters.get("abort_window_invalidation") == 1

    def test_no_speculation_is_also_safe(self):
        """The serialized variant never reads data before the version,
        so the same schedule yields either an abort or a consistent
        (post-update) image — never torn data."""
        cluster, dst, src, store, handle = build_race(SabreMode.NO_SPECULATION)
        racing_writer(cluster, dst, store)
        result, data = run_sabre(cluster, src, handle)
        if result.success:
            assert not torn_words(data)[0]
        else:
            assert cluster.node(0).counters.get("sabre_aborts") == 1

    def test_retry_after_abort_succeeds_with_new_data(self):
        cluster, dst, src, store, handle = build_race(SabreMode.SPECULATIVE)
        racing_writer(cluster, dst, store)
        buf = src.alloc_buffer(handle.wire_size)
        outcomes = []

        def proc():
            result = yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)
            outcomes.append(result.success)
            while not outcomes[-1]:
                result = yield src.sabre_read(
                    0, handle.base_addr, handle.wire_size, buf
                )
                outcomes.append(result.success)

        cluster.sim.process(proc())
        cluster.run()
        assert outcomes[-1] is True
        raw = src.read_local(buf, handle.wire_size)
        data = RawLayout().unpack(raw, PAYLOAD_LEN).data
        assert data == stamped_payload(2, PAYLOAD_LEN)


class TestBaseBlockAmbiguity:
    def test_post_window_write_caught_by_validate_stage(self):
        """A writer that starts after the version read must be caught by
        the validate stage's version re-read (§4.2)."""
        cluster = Cluster(ClusterConfig().with_sabre_mode(SabreMode.SPECULATIVE))
        dst, src = cluster.node(0), cluster.node(1)
        store = ObjectStore(dst.phys, RawLayout())
        payload_len = 8000  # long transfer: plenty of post-window time
        store.create(1, stamped_payload(0, payload_len), version=0)
        handle = store.handle(1)

        def write_late():
            steps, _v = store.update_steps(1, stamped_payload(2, payload_len))
            for addr, chunk in steps:
                dst.chip.write_block(0, addr, chunk)

        # The version read completes within ~150 ns; the full transfer
        # takes >450 ns.  Write at 300 ns: post-window, mid-transfer.
        cluster.sim.call_later(300.0, write_late)
        buf = src.alloc_buffer(handle.wire_size)
        results = []

        def proc():
            result = yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)
            results.append(result)

        cluster.sim.process(proc())
        cluster.run()
        assert not results[0].success
        assert dst.counters.get("validate_rereads") == 1
        assert dst.counters.get("validate_failures") == 1

    def test_base_eviction_false_alarm_validates_successfully(self):
        """An eviction-triggered invalidation of the base block is a
        false alarm: the validate stage re-reads the version, finds it
        unchanged, and confirms success (§4.2)."""
        cluster = Cluster(ClusterConfig().with_sabre_mode(SabreMode.SPECULATIVE))
        dst, src = cluster.node(0), cluster.node(1)
        store = ObjectStore(dst.phys, RawLayout())
        payload_len = 8000
        store.create(1, stamped_payload(4, payload_len), version=4)
        handle = store.handle(1)

        def evict_base():
            # Stream unrelated blocks through the LLC until the object's
            # base block is evicted.
            filler = dst.phys.allocate(64 * (dst.chip.llc.capacity + 64))
            for i in range(dst.chip.llc.capacity + 64):
                dst.chip.read_block(0, filler + 64 * i)

        cluster.sim.call_later(300.0, evict_base)
        buf = src.alloc_buffer(handle.wire_size)
        results = []

        def proc():
            result = yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)
            results.append(result)

        cluster.sim.process(proc())
        cluster.run()
        assert results[0].success  # no writer: atomicity holds
        assert dst.counters.get("validate_rereads") == 1
        assert dst.counters.get("validate_failures") == 0
        raw = src.read_local(buf, handle.wire_size)
        assert RawLayout().unpack(raw, payload_len).data == stamped_payload(
            4, payload_len
        )


class TestHardwareRetry:
    def test_hardware_retry_recovers_transparently(self):
        """§5.1 ablation: with hardware retry enabled and a conflict
        detected before any reply left, the R2P2 retries internally and
        the source still sees one successful completion."""
        cfg = ClusterConfig().with_sabre_mode(SabreMode.SPECULATIVE)
        sabre = dataclasses.replace(cfg.node.sabre, hardware_retry=True)
        node = dataclasses.replace(cfg.node, sabre=sabre)
        cfg = dataclasses.replace(cfg, node=node)
        cluster = Cluster(cfg)
        dst, src = cluster.node(0), cluster.node(1)
        store = ObjectStore(dst.phys, RawLayout())
        store.create(1, stamped_payload(0, PAYLOAD_LEN), version=0)
        handle = store.handle(1)
        dst.chip.read_block(0, handle.base_addr + 64)  # warm block 1

        def write_now():
            steps, _v = store.update_steps(1, stamped_payload(2, PAYLOAD_LEN))
            for addr, chunk in steps:
                dst.chip.write_block(0, addr, chunk)

        # The conflict must land after the reads are issued (~67 ns)
        # but before the first memory reply (~75 ns): no reply has been
        # sent yet, so the transparent retry is legal (§5.1).
        cluster.sim.call_later(70.0, write_now)
        buf = src.alloc_buffer(handle.wire_size)
        results = []

        def proc():
            result = yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)
            results.append(result)

        cluster.sim.process(proc())
        cluster.run()
        assert dst.counters.get("hardware_retries") >= 1
        assert results[0].success
        raw = src.read_local(buf, handle.wire_size)
        assert RawLayout().unpack(raw, PAYLOAD_LEN).data == stamped_payload(
            2, PAYLOAD_LEN
        )

"""Unit tests for the object store and writer update plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.mem.backing import PhysicalMemory
from repro.objstore.layout import (
    PerCacheLineLayout,
    RawLayout,
    is_locked,
    stamped_payload,
)
from repro.objstore.store import ObjectStore


def make_store(layout=None):
    return ObjectStore(PhysicalMemory(), layout or RawLayout())


class TestCreateAndRead:
    def test_create_then_read(self):
        store = make_store()
        store.create(1, b"hello")
        result = store.read(1)
        assert result.ok and result.data == b"hello" and result.version == 0

    def test_objects_are_block_aligned(self):
        store = make_store()
        for i in range(5):
            h = store.create(i, bytes(10))
            assert h.base_addr % 64 == 0

    def test_duplicate_id_rejected(self):
        store = make_store()
        store.create(1, b"x")
        with pytest.raises(SimulationError):
            store.create(1, b"y")

    def test_unknown_object_rejected(self):
        with pytest.raises(SimulationError):
            make_store().read(99)

    def test_odd_initial_version_rejected(self):
        with pytest.raises(SimulationError):
            make_store().create(1, b"x", version=3)

    def test_find_by_base(self):
        store = make_store()
        h = store.create(1, b"x")
        assert store.find_by_base(h.base_addr) == h
        assert store.find_by_base(h.base_addr + 64) is None


class TestUpdates:
    def test_functional_write_bumps_version_by_two(self):
        store = make_store()
        store.create(1, b"aaaa")
        new_version = store.write(1, b"bbbb")
        assert new_version == 2
        result = store.read(1)
        assert result.ok and result.data == b"bbbb"

    def test_size_change_rejected(self):
        store = make_store()
        store.create(1, b"aaaa")
        with pytest.raises(SimulationError):
            store.write(1, b"too long")

    def test_update_steps_order_header_first_commit_last(self):
        store = make_store()
        h = store.create(1, bytes(100))
        steps, committed = store.update_steps(1, b"z" * 100)
        assert committed == 2
        # First step: header goes odd at the version address.
        addr0, bytes0 = steps[0]
        assert addr0 == store.version_addr(1)
        assert is_locked(int.from_bytes(bytes0, "little"))
        # Last step: header goes even.
        addr_last, bytes_last = steps[-1]
        assert addr_last == store.version_addr(1)
        assert int.from_bytes(bytes_last, "little") == 2
        # Middle steps cover the whole wire image.
        covered = sum(len(b) for _, b in steps[1:-1])
        assert covered == h.wire_size

    def test_partial_replay_leaves_locked_object(self):
        """Stopping mid-plan must leave a detectably-inconsistent object."""
        store = make_store(PerCacheLineLayout())
        store.create(1, stamped_payload(0, 200))
        steps, _ = store.update_steps(1, stamped_payload(2, 200))
        for addr, chunk in steps[: len(steps) // 2]:
            store.phys.write(addr, chunk)
        assert not store.read(1).ok

    def test_full_replay_commits(self):
        store = make_store(PerCacheLineLayout())
        store.create(1, stamped_payload(0, 200))
        steps, committed = store.update_steps(1, stamped_payload(2, 200))
        for addr, chunk in steps:
            store.phys.write(addr, chunk)
        result = store.read(1)
        assert result.ok and result.version == committed == 2

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=600), st.integers(min_value=1, max_value=5))
    def test_repeated_updates_monotone_versions(self, size, rounds):
        store = make_store()
        store.create(1, bytes(size))
        versions = [store.write(1, bytes(size)) for _ in range(rounds)]
        assert versions == [2 * (i + 1) for i in range(rounds)]


class TestHandles:
    def test_num_blocks(self):
        store = make_store()
        h = store.create(1, bytes(120))  # wire = 128 -> 2 blocks
        assert h.num_blocks == 2

    def test_object_ids(self):
        store = make_store()
        store.create(5, b"x")
        store.create(9, b"y")
        assert sorted(store.object_ids()) == [5, 9]
        assert len(store) == 2

"""Tests for live resharding: incremental ring membership and its
exact range deltas (collisions included), the ReshardManager scale-out/
scale-in protocol under load, migration-aware write accounting and
deadline propagation, the hotspot rebalance policy, and the registered
elastic experiment specs."""

import os

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.experiments.runner import SweepRunner
from repro.objstore.layout import is_locked, stamped_payload
from repro.objstore.reshard import (
    RebalanceConfig,
    ReshardManager,
    ReshardOp,
)
from repro.objstore.sharded import HashRing, ShardedConfig, ShardedKV
from repro.workloads.elastic import (
    ELASTIC_SCALING_SPEC,
    HOTKEY_REBALANCE_SPEC,
    ElasticConfig,
    run_elastic,
)
from repro.workloads.fuzz import fuzz_round

KEYS = [f"key-{i}" for i in range(300)]


def elastic_cfg(**kw):
    defaults = dict(
        n_shards=4,
        max_shards=8,
        n_clients=2,
        replication=2,
        mechanism="sabre",
        object_size=256,
        n_objects=48,
        seed=11,
    )
    defaults.update(kw)
    return ShardedConfig(**defaults)


def run_mixed_load(kv, t_end, n_readers=2, n_writers=2, seed=5):
    """Closed-loop readers and writers over every key until ``t_end``
    (the standard background load for a topology change)."""
    sim = kv.cluster.sim
    keys = kv.keys()
    acked = [0]

    def reader(session, label):
        pick = make_rng(seed, "reshard-reader", label)
        while sim.now < t_end:
            yield from session.lookup(keys[pick.randrange(len(keys))], t_end)

    def writer(client, label):
        pick = make_rng(seed, "reshard-writer", label)
        while sim.now < t_end:
            ack = yield kv.put(client, keys[pick.randrange(len(keys))], t_end)
            acked[0] += int(ack is not None)
            yield sim.timeout(pick.uniform(20.0, 120.0))

    for i in range(n_readers):
        sim.process(reader(kv.reader_session(i % kv.cfg.clients), i))
    for i in range(n_writers):
        sim.process(writer(i % kv.cfg.clients, i))
    sim.run()
    return acked[0]


def audit_at_rest(kv):
    """Every stored image on every serving member must be a committed
    (even-version) stamp — the migration must never leave a torn or
    locked image at rest."""
    bad = []
    for shard in kv.member_shards():
        store = kv.stores[shard]
        for idx in store.object_ids():
            version = store.current_version(idx)
            handle = store.handle(idx)
            raw = store.phys.read(handle.base_addr, handle.wire_size)
            want = kv.layout.pack(
                version, stamped_payload(version, kv.cfg.payload_len)
            )
            if is_locked(version) or raw != want:
                bad.append((shard, idx, version))
    assert not bad


# ----------------------------------------------------------------------
# incremental ring membership
# ----------------------------------------------------------------------
class TestIncrementalRing:
    def test_add_shard_matches_fresh_build(self):
        ring = HashRing(range(4), vnodes=32, seed=9)
        ring.add_shard(4)
        fresh = HashRing(range(5), vnodes=32, seed=9)
        assert ring._points == fresh._points
        assert [ring.replicas(k, 3) for k in KEYS] == [
            fresh.replicas(k, 3) for k in KEYS
        ]

    def test_remove_shard_matches_fresh_build(self):
        ring = HashRing(range(5), vnodes=32, seed=9)
        ring.remove_shard(2)
        fresh = HashRing([0, 1, 3, 4], vnodes=32, seed=9)
        assert ring._points == fresh._points
        assert [ring.replicas(k, 3) for k in KEYS] == [
            fresh.replicas(k, 3) for k in KEYS
        ]

    def test_add_then_remove_roundtrips(self):
        ring = HashRing(range(4), vnodes=16, seed=3)
        before = list(ring._points)
        ring.add_shard(7)
        ring.remove_shard(7)
        assert ring._points == before
        assert sorted(ring.shard_ids) == [0, 1, 2, 3]

    def test_add_deltas_name_exactly_the_moved_keys(self):
        ring = HashRing(range(4), vnodes=32, seed=9)
        old = {k: ring.primary(k) for k in KEYS}
        deltas = ring.add_shard(4)
        assert deltas
        for key in KEYS:
            h = ring.key_hash(key)
            covering = [d for d in deltas if d.covers(h)]
            if ring.primary(key) != old[key]:
                # A moved key is covered by exactly one delta and that
                # delta names both sides of the move.
                assert len(covering) == 1
                assert covering[0].old_shard == old[key]
                assert covering[0].new_shard == ring.primary(key) == 4
            else:
                assert not covering

    def test_remove_deltas_name_exactly_the_moved_keys(self):
        ring = HashRing(range(5), vnodes=32, seed=9)
        old = {k: ring.primary(k) for k in KEYS}
        deltas = ring.remove_shard(1)
        for key in KEYS:
            h = ring.key_hash(key)
            covering = [d for d in deltas if d.covers(h)]
            if old[key] == 1:
                assert len(covering) == 1
                assert covering[0].old_shard == 1
                assert covering[0].new_shard == ring.primary(key)
            else:
                assert ring.primary(key) == old[key]
                assert not covering


class _CollidingRing(HashRing):
    """Every shard's vnode ``v`` lands on the same 64-bit point, so the
    entire ring is hash-collision runs — ownership must come from the
    (point, shard, vnode) tie-break, never construction order."""

    def _point(self, shard, vnode):
        return (vnode + 1) << 32


class TestRingCollisions:
    def test_colliding_points_order_by_shard_then_vnode(self):
        ring = _CollidingRing((1, 2), vnodes=8, seed=1)
        # Within every equal-hash run the tuple-smallest shard owns.
        assert all(ring.primary(k) == 1 for k in KEYS)
        # Shadowed shards still appear in successor lists (the walk
        # covers every point, collisions included).
        assert all(sorted(ring.replicas(k, 2)) == [1, 2] for k in KEYS)

    def test_incremental_build_is_stable_under_collisions(self):
        """Regression: adding/removing a shard whose points collide
        with existing ones must produce the same ring as a fresh build
        — the tie-break, not insertion order, decides ownership."""
        ring = _CollidingRing((1, 2), vnodes=8, seed=1)
        deltas = ring.add_shard(0)
        fresh = _CollidingRing((0, 1, 2), vnodes=8, seed=1)
        assert ring._points == fresh._points
        assert [ring.primary(k) for k in KEYS] == [
            fresh.primary(k) for k in KEYS
        ]
        # Shard 0 sorts ahead of shard 1 at every collision point, so
        # it takes over every run head — and the deltas say so exactly.
        assert all(ring.primary(k) == 0 for k in KEYS)
        assert deltas
        for d in deltas:
            assert (d.old_shard, d.new_shard) == (1, 0)
        ring.remove_shard(0)
        assert ring._points == _CollidingRing((1, 2), vnodes=8, seed=1)._points

    def test_shadowed_shard_owns_nothing_and_reports_no_deltas(self):
        """Adding a shard whose every point is shadowed by a smaller
        (hash, shard) tuple moves no keys and must say so: zero deltas,
        primaries untouched."""
        ring = _CollidingRing((0, 1), vnodes=8, seed=1)
        old = {k: ring.primary(k) for k in KEYS}
        deltas = ring.add_shard(2)
        assert deltas == []
        assert {k: ring.primary(k) for k in KEYS} == old
        # The shadowed member is still reachable as a replica.
        assert all(2 in ring.replicas(k, 3) for k in KEYS)
        # And removing it is a no-op for ownership, symmetrically.
        assert ring.remove_shard(2) == []
        assert {k: ring.primary(k) for k in KEYS} == old


# ----------------------------------------------------------------------
# membership lifecycle
# ----------------------------------------------------------------------
class TestMembership:
    def test_activate_and_deactivate_spare(self):
        kv = ShardedKV(elastic_cfg(n_shards=2, max_shards=3))
        assert kv.member_shards() == [0, 1]
        epoch = kv.epoch
        kv.activate_shard(2)
        assert kv.member_shards() == [0, 1, 2]
        assert kv.serving[2]
        assert kv.epoch == epoch + 1
        kv.deactivate_shard(2)  # nothing routes to it yet
        assert kv.member_shards() == [0, 1]

    def test_activation_validation(self):
        kv = ShardedKV(elastic_cfg(n_shards=2, max_shards=3))
        with pytest.raises(ConfigError):
            kv.activate_shard(0)  # already a member
        with pytest.raises(ConfigError):
            kv.activate_shard(3)  # beyond the provisioned slots
        with pytest.raises(ConfigError):
            kv.deactivate_shard(2)  # not a member
        with pytest.raises(ConfigError):
            kv.deactivate_shard(0)  # placement still routes to it

    def test_spares_do_not_count_as_an_outage(self):
        from repro.objstore.failover import FailoverManager, FailurePlan

        kv = ShardedKV(elastic_cfg(n_shards=2, max_shards=4))
        injector = FailoverManager(kv, FailurePlan(faults=()))
        assert not injector.any_down()

    def test_reshard_op_validation(self):
        kv = ShardedKV(elastic_cfg())
        with pytest.raises(ConfigError):
            ReshardOp("split", 0).validate(kv)
        with pytest.raises(ConfigError):
            ReshardOp("add", 99).validate(kv)


# ----------------------------------------------------------------------
# the manager protocol under load
# ----------------------------------------------------------------------
class TestReshardManager:
    @pytest.mark.parametrize("mechanism", ("sabre", "checksum"))
    def test_scale_out_under_load_matches_fresh_deployment(self, mechanism):
        cfg = elastic_cfg(mechanism=mechanism)
        kv = ShardedKV(cfg)
        manager = ReshardManager(kv)
        chosen = manager.scale_out(4, at_ns=8_000.0)
        assert chosen == [4, 5, 6, 7]
        acked = run_mixed_load(kv, t_end=40_000.0)
        assert acked > 0
        assert kv.member_shards() == list(range(8))
        assert manager.stats.shards_added == 4
        assert manager.stats.keys_migrated > 0
        assert manager.stats.vnode_handoffs > 0
        assert not kv.double_read
        # Zero undetected violations through the whole migration.
        assert sum(
            s.undetected_violations for s in kv.all_reader_stats()
        ) == 0
        audit_at_rest(kv)
        # Placement-identical to a deployment that *started* at 8.
        fresh = ShardedKV(elastic_cfg(mechanism=mechanism, n_shards=8))
        assert kv._placement == fresh._placement

    def test_scale_in_returns_members_to_spares(self):
        cfg = elastic_cfg(n_shards=6, max_shards=6)
        kv = ShardedKV(cfg)
        manager = ReshardManager(kv)
        manager.scale_in([4, 5], at_ns=8_000.0)
        run_mixed_load(kv, t_end=40_000.0)
        assert kv.member_shards() == [0, 1, 2, 3]
        assert not kv.members[4] and not kv.serving[5]
        assert manager.stats.shards_removed == 2
        assert sum(
            s.undetected_violations for s in kv.all_reader_stats()
        ) == 0
        audit_at_rest(kv)
        fresh = ShardedKV(elastic_cfg(n_shards=4, max_shards=6))
        assert kv._placement == fresh._placement
        # The departed shards hold no routed state anymore.
        for idx in range(cfg.n_objects):
            assert not set(kv._placement[idx]) & {4, 5}

    def test_scale_out_needs_enough_spares(self):
        kv = ShardedKV(elastic_cfg(n_shards=4, max_shards=5))
        manager = ReshardManager(kv)
        with pytest.raises(ConfigError):
            manager.scale_out(2, at_ns=100.0)
        # A scheduled (not yet executed) scale-out claims its slot.
        manager.scale_out(1, at_ns=100.0)
        assert manager.spare_slots() == []
        with pytest.raises(ConfigError):
            manager.scale_out(1, at_ns=200.0)

    def test_scale_in_below_replication_rejected(self):
        kv = ShardedKV(elastic_cfg(n_shards=3, max_shards=3))
        manager = ReshardManager(kv)
        with pytest.raises(ConfigError):
            manager.scale_in([1, 2], at_ns=10.0)  # would leave 1 < repl 2
        # Rejected at schedule time: nothing queued, the run is clean.
        kv.cluster.sim.run()
        assert manager.stats.shards_removed == 0
        assert kv.member_shards() == [0, 1, 2]

    def test_membership_conflicts_rejected_at_schedule_time(self):
        """Regression: membership-intent conflicts (adding a member,
        removing a spare, two plans draining the same shard) surface
        as schedule-time ConfigErrors, not mid-simulation crashes."""
        kv = ShardedKV(elastic_cfg(n_shards=4, max_shards=6, n_objects=12))
        manager = ReshardManager(kv)
        with pytest.raises(ConfigError):
            manager.schedule([ReshardOp("add", 0)], at_ns=10.0)  # member
        with pytest.raises(ConfigError):
            manager.scale_in([5], at_ns=10.0)  # spare, not a member
        manager.scale_in([3], at_ns=1_000.0)
        with pytest.raises(ConfigError):
            manager.scale_in([3], at_ns=2_000.0)  # already leaving
        chosen = manager.scale_out(1, at_ns=1_000.0)
        with pytest.raises(ConfigError):
            # A slot claimed by a scheduled scale-out cannot join twice.
            manager.schedule([ReshardOp("add", chosen[0])], at_ns=2_000.0)
        # The valid plans still execute cleanly.
        kv.cluster.sim.run()
        assert kv.member_shards() == [0, 1, 2, chosen[0]]
        assert not any(e[1] == "plan_error" for e in manager.events)

    def test_scale_in_recopies_stale_prior_owner_images(self):
        """Regression: a scale-out moves keys off their owners (whose
        at-rest images stay behind), writes advance the keys on the
        new owner, and a scale-in hands them back.  The returning
        owners must be re-copied, not trusted on their stale images —
        pinned by version monotonicity: no at-rest copy anywhere may
        exceed its key's current primary."""
        cfg = elastic_cfg(n_objects=32, max_shards=5)
        kv = ShardedKV(cfg)
        manager = ReshardManager(kv)
        added = manager.scale_out(1, at_ns=2_000.0)
        manager.scale_in(added, at_ns=25_000.0)
        acked = run_mixed_load(kv, t_end=50_000.0)
        assert acked > 0
        assert manager.stats.shards_added == 1
        assert manager.stats.shards_removed == 1
        assert kv.member_shards() == [0, 1, 2, 3]
        for idx in range(cfg.n_objects):
            v_primary = kv.stores[kv._placement[idx][0]].current_version(idx)
            # Every routed replica converged to the primary's version.
            for s in kv._placement[idx]:
                assert kv.stores[s].current_version(idx) == v_primary
            # No stale (or regressed) image anywhere outruns the key.
            for s in range(kv.provisioned):
                if idx in kv.stores[s]:
                    assert kv.stores[s].current_version(idx) <= v_primary, (
                        idx,
                        s,
                    )
        audit_at_rest(kv)

    def test_reads_keep_completing_mid_migration(self):
        cfg = elastic_cfg()
        kv = ShardedKV(cfg)
        manager = ReshardManager(kv)
        manager.scale_out(4, at_ns=5_000.0)
        sim = kv.cluster.sim
        mid = [0]
        t_end = 30_000.0

        def reader(session):
            pick = make_rng(5, "mid-reader")
            keys = kv.keys()
            while sim.now < t_end:
                ok = yield from session.lookup(
                    keys[pick.randrange(len(keys))], t_end
                )
                if ok and manager.any_migrating():
                    mid[0] += 1

        sim.process(reader(kv.reader_session(0)))
        sim.run()
        assert mid[0] > 0
        assert manager.stats.migration_ns > 0


# ----------------------------------------------------------------------
# write accounting and deadlines across migration re-routes
# ----------------------------------------------------------------------
class TestMigrationWriteAccounting:
    def _kv(self):
        return ShardedKV(
            elastic_cfg(n_shards=2, max_shards=2, n_clients=1, n_objects=8)
        )

    def test_redirect_charged_once_to_the_fencing_shard(self):
        """A migration flipping ownership between a put's issue and its
        service fences the write exactly once: one ``fenced_rejects``
        and one paired ``reshard_redirects`` on the stale owner, the
        committed update on the new one — no double-charged retries, no
        orphaned counters."""
        kv = self._kv()
        sim = kv.cluster.sim
        key = kv.key_name(0)
        src, dst = kv._placement[0][0], kv._placement[0][1]
        acks = []

        def driver():
            ack = yield kv.put(0, key, t_end=50_000.0)
            acks.append(ack)

        sim.process(driver())

        def flip():
            kv._placement[0] = (dst, src)
            kv.epoch += 1

        sim.call_at(0.5, flip)  # put issued, not yet served
        sim.run()
        assert acks and acks[0] is not None
        ws_src, ws_dst = kv.write_stats[src], kv.write_stats[dst]
        assert ws_src.fenced_rejects == 1
        assert ws_src.reshard_redirects == 1
        assert ws_dst.fenced_rejects == 0
        assert ws_dst.reshard_redirects == 0
        assert ws_dst.primary_updates == 1
        assert ws_src.primary_updates == 0
        # The busy ledger stays paired and untouched.
        assert sum(w.write_retries for w in kv.write_stats) == 0
        assert sum(w.busy_rejects for w in kv.write_stats) == 0
        # Both attempts are routed; nothing issued twice or lost.
        assert sum(w.writes_routed for w in kv.write_stats) == 2

    def test_fence_without_ownership_move_is_not_a_reshard_redirect(self):
        """An epoch bump alone (same primary) fences the write but must
        not charge the migration-redirect counter."""
        kv = self._kv()
        sim = kv.cluster.sim
        key = kv.key_name(0)
        acks = []

        def driver():
            ack = yield kv.put(0, key, t_end=50_000.0)
            acks.append(ack)

        sim.process(driver())
        sim.call_at(0.5, lambda: setattr(kv, "epoch", kv.epoch + 1))
        sim.run()
        assert acks and acks[0] is not None
        assert sum(w.fenced_rejects for w in kv.write_stats) == 1
        assert sum(w.reshard_redirects for w in kv.write_stats) == 0

    def test_permanently_migrating_key_cannot_spin_past_deadline(self):
        """A redirected put carries its *remaining* budget: if the key
        keeps migrating forever, the put resolves ``None`` at the
        deadline instead of restarting its budget on every re-route."""
        kv = self._kv()
        sim = kv.cluster.sim
        idx = 0
        key = kv.key_name(idx)
        t_dead = 4_000.0

        def flipper():
            # Flip ownership + epoch faster than any RPC round trip,
            # so every re-issued put arrives already stale.  Bounded
            # well past the deadline so the heap still drains.
            while sim.now < 12_000.0:
                p = kv._placement[idx]
                kv._placement[idx] = (p[1], p[0]) + p[2:]
                kv.epoch += 1
                yield sim.timeout(1.0)

        sim.process(flipper())
        done = []

        def driver():
            ack = yield kv.put(0, key, t_end=t_dead)
            done.append((ack, sim.now))

        sim.process(driver())
        sim.run()
        ack, t_done = done[0]
        assert ack is None
        assert t_done >= t_dead  # used the full remaining budget ...
        assert t_done <= 12_000.0  # ... and stopped promptly after it
        assert sum(w.reshard_redirects for w in kv.write_stats) > 0


# ----------------------------------------------------------------------
# hotspot rebalancing
# ----------------------------------------------------------------------
class TestHotspotPolicy:
    def test_rebalance_config_validation(self):
        with pytest.raises(ConfigError):
            RebalanceConfig(interval_ns=0.0).validate()
        with pytest.raises(ConfigError):
            RebalanceConfig(hot_share=0.1, cool_share=0.2).validate()
        with pytest.raises(ConfigError):
            RebalanceConfig(max_extra=-1).validate()

    def test_hot_key_promoted_then_demoted(self):
        """A key concentrating reads gains extra replicas; once its
        share cools the extras drop and placement collapses back."""
        kv = ShardedKV(elastic_cfg(max_shards=4, n_objects=32))
        manager = ReshardManager(kv)
        manager.start_rebalancer(
            RebalanceConfig(
                interval_ns=4_000.0,
                hot_share=0.3,
                cool_share=0.05,
                max_extra=2,
                min_reads=8,
            ),
            until_ns=60_000.0,
        )
        sim = kv.cluster.sim
        t_hot_end = 30_000.0
        base_width = len(kv._placement[0])

        def reader(session, label):
            pick = make_rng(3, "hot-reader", label)
            while sim.now < t_hot_end:
                idx = 0 if pick.random() < 0.8 else pick.randrange(32)
                yield from session.lookup(kv.key_name(idx), t_hot_end)

        for i in range(2):
            sim.process(reader(kv.reader_session(i % kv.cfg.clients), i))
        sim.run()
        assert manager.stats.hot_promotions >= 1
        assert manager.stats.hot_demotions >= 1
        assert any(e[1] == "promote" and e[2] == 0 for e in manager.events)
        # Load is gone, so the extras are gone too.
        assert kv.hot_replicas == {}
        assert len(kv._placement[0]) == base_width
        assert sum(
            s.undetected_violations for s in kv.all_reader_stats()
        ) == 0
        audit_at_rest(kv)

    def test_repromotion_refreshes_stale_at_rest_image(self):
        """Regression: promote -> demote -> write -> re-promote onto
        the same shard.  The ex-extra still holds an at-rest copy from
        its first tour; the re-promotion must overwrite it with the
        current committed image, never serve the stale one."""
        kv = ShardedKV(elastic_cfg(n_shards=3, max_shards=3, n_objects=4))
        manager = ReshardManager(kv, drain_ns=500.0)
        sim = kv.cluster.sim
        idx = 0
        key = kv.key_name(idx)
        done = []

        def driver():
            cfg = RebalanceConfig()
            yield from manager._promote(idx, cfg)
            extra = kv.hot_replicas[idx][0]
            manager._demote(idx)
            yield sim.timeout(1_000.0)  # past the drain: extra pruned
            assert extra not in kv._placement[idx]
            stale = kv.stores[extra].current_version(idx)
            for _ in range(3):
                ack = yield kv.put(0, key, t_end=sim.now + 50_000.0)
                assert ack is not None
            yield sim.timeout(2_000.0)  # replication fan-out drains
            yield from manager._promote(idx, cfg)
            assert kv.hot_replicas[idx] == [extra]
            v_primary = kv.stores[kv._placement[idx][0]].current_version(
                idx
            )
            assert v_primary > stale
            assert kv.stores[extra].current_version(idx) == v_primary
            done.append(True)

        sim.process(driver())
        sim.run()
        assert done
        audit_at_rest(kv)

    def test_demote_keeps_extra_readable_for_drain_grace(self):
        """Mirror of the migration drain: a demoted extra stops being
        routed to immediately but stays on the placement tail — still
        replicated-to — for ``drain_ns``, so an in-flight read routed
        pre-demotion can never consume a stale copy."""
        kv = ShardedKV(elastic_cfg(n_shards=3, max_shards=3, n_objects=4))
        manager = ReshardManager(kv, drain_ns=2_000.0)
        sim = kv.cluster.sim
        idx = 0
        done = []

        def driver():
            yield from manager._promote(idx, RebalanceConfig())
            extra = kv.hot_replicas[idx][0]
            manager._demote(idx)
            # Routing stopped at once ...
            assert kv.hot_replicas == {}
            # ... but the ex-extra is still placed during the grace,
            assert extra in kv._placement[idx]
            # ... and still covered by the replication fan-out:
            ack = yield kv.put(0, kv.key_name(idx), t_end=sim.now + 10_000.0)
            assert ack is not None
            yield sim.timeout(1_000.0)  # replication drains (< grace)
            v_primary = kv.stores[kv._placement[idx][0]].current_version(
                idx
            )
            assert kv.stores[extra].current_version(idx) == v_primary
            yield sim.timeout(2_000.0)  # past the grace: now pruned
            assert extra not in kv._placement[idx]
            done.append(True)

        sim.process(driver())
        sim.run()
        assert done
        assert manager.stats.hot_demotions == 1


# ----------------------------------------------------------------------
# the elastic workload + registered specs
# ----------------------------------------------------------------------
class TestElasticWorkload:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ElasticConfig(scale_at_frac=0.7, post_frac=0.6).validate()
        with pytest.raises(ConfigError):
            ElasticConfig(warmup_ns=80_000.0).validate()
        with pytest.raises(ConfigError):
            ElasticConfig(fault_kind="meteor").validate()
        with pytest.raises(ConfigError):
            ElasticConfig(n_clients=0).validate()
        with pytest.raises(ConfigError):
            ElasticConfig(target_shards=1, replication=2).validate()

    @pytest.mark.parametrize(
        "mechanism", ("sabre", "percl_versions", "checksum", "drtm_lock")
    )
    def test_scale_out_mid_run_zero_violations(self, mechanism):
        result = run_elastic(
            ElasticConfig(
                mechanism=mechanism,
                duration_ns=60_000.0,
                compare_baseline=False,
                seed=43,
            )
        )
        assert result.undetected_violations == 0
        assert result.reshard.shards_added == 4
        assert result.reshard.keys_migrated > 0
        assert result.reads_during_migration > 0
        assert result.post_reads > 0
        assert sum(row["member"] for row in result.shard_rows) == 8

    def test_scale_in_mid_run(self):
        result = run_elastic(
            ElasticConfig(
                n_shards=6,
                target_shards=4,
                duration_ns=60_000.0,
                compare_baseline=False,
                seed=43,
            )
        )
        assert result.undetected_violations == 0
        assert result.reshard.shards_removed == 2
        assert sum(row["member"] for row in result.shard_rows) == 4

    def test_migration_composes_with_gray_windows(self):
        result = run_elastic(
            ElasticConfig(
                duration_ns=60_000.0,
                compare_baseline=False,
                fault_kind="gray",
                fault_windows=2,
                seed=43,
            )
        )
        assert result.undetected_violations == 0
        assert result.reshard.shards_added == 4

    @pytest.mark.smoke
    @pytest.mark.parametrize("seed", (43, 101, 202))
    def test_acceptance_scale_out_converges(self, seed):
        """The headline criterion: 4 -> 8 mid-run, zero undetected
        violations, post-window throughput within 10% of a run that
        started at 8 shards."""
        result = run_elastic(
            ElasticConfig(duration_ns=120_000.0, seed=seed)
        )
        assert result.undetected_violations == 0
        assert result.reshard.shards_added == 4
        assert 0.9 <= result.convergence_ratio <= 1.1, (
            seed,
            result.convergence_ratio,
        )

    def test_elastic_scaling_parallel_sweep_matches_serial(self):
        axes = {"target_shards": (8,)}
        serial = SweepRunner(ELASTIC_SCALING_SPEC, scale=0.1, axes=axes).run()
        parallel = SweepRunner(
            ELASTIC_SCALING_SPEC, scale=0.1, axes=axes, jobs=2
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_hotkey_rebalance_parallel_sweep_matches_serial(self):
        serial = SweepRunner(HOTKEY_REBALANCE_SPEC, scale=0.1).run()
        parallel = SweepRunner(HOTKEY_REBALANCE_SPEC, scale=0.1, jobs=2).run()
        assert repr(serial.rows) == repr(parallel.rows)


# ----------------------------------------------------------------------
# fuzz composition: migration x crash x gray x partition
# ----------------------------------------------------------------------
class TestElasticFuzzLane:
    def test_reshard_lane_is_deterministic(self):
        kw = dict(duration_ns=40_000.0, reshard_adds=2)
        for seed in (1, 7):
            a = fuzz_round("sabre", 4, seed=seed, **kw)
            b = fuzz_round("sabre", 4, seed=seed, **kw)
            assert a.fingerprint == b.fingerprint, seed
            assert a.undetected_violations == 0
            assert a.shards_added == 2
            assert a.keys_migrated > 0

    def test_reshard_composes_with_crash_and_fault_lanes(self):
        out = fuzz_round(
            "sabre",
            4,
            seed=7,
            duration_ns=50_000.0,
            crash_cycles=1,
            gray_windows=1,
            partition_windows=1,
            skew_max_ns=200.0,
            reshard_adds=2,
        )
        assert out.undetected_violations == 0
        assert out.torn_reads_observed == 0
        assert out.shards_added == 2
        assert out.crashes >= 1

    @pytest.mark.slow
    def test_migration_soak(self):
        """Nightly lane: many seeds of the fully-composed schedule
        (migration x crash x gray x partition x skew)."""
        rounds = int(os.environ.get("SABRES_FUZZ_ROUNDS", "6"))
        for i in range(rounds):
            for mechanism in ("sabre", "checksum"):
                out = fuzz_round(
                    mechanism,
                    4,
                    seed=9_000 + i,
                    duration_ns=60_000.0,
                    crash_cycles=2,
                    gray_windows=2,
                    partition_windows=1,
                    skew_max_ns=500.0,
                    reshard_adds=2,
                )
                assert out.undetected_violations == 0, (mechanism, i)
                assert out.torn_reads_observed == 0, (mechanism, i)
                assert out.shards_added == 2

"""Calibration invariants: the simulated substrate must exhibit the
anchor numbers the paper's analysis depends on (§5.1, Table 2).

If someone changes a latency constant or a pipeline rate, these tests
catch the drift before it silently invalidates every figure.
"""

import pytest

from repro.common.config import ClusterConfig, NodeConfig, default_cluster
from repro.common.costs import DEFAULT_COSTS
from repro.mem.system import AccessTier, ChipMemorySystem
from repro.noc.mesh import Mesh
from repro.sim.engine import Simulator
from repro.sonuma.node import Cluster


def fresh_chip():
    sim = Simulator()
    cfg = NodeConfig()
    return ChipMemorySystem(sim, cfg, Mesh(cfg.noc))


class TestMemoryAnchors:
    def test_average_memory_latency_about_90ns(self):
        """§5.1 sizes the stream buffers for a ~90 ns average memory
        access latency; an *unloaded* DRAM access must land in that
        band (accesses are spaced out so channel queuing cannot bias
        the measurement)."""
        chip = fresh_chip()
        sim = chip.sim
        samples = []

        def prober():
            for i in range(128):
                addr = chip.phys.allocate(64)
                done, tier = chip.read_block(i % 16, addr)
                assert tier is AccessTier.MEM
                samples.append(done - sim.now)
                yield sim.timeout(1000.0)

        sim.process(prober())
        sim.run()
        avg = sum(samples) / len(samples)
        assert 80.0 <= avg <= 100.0

    def test_llc_hit_far_cheaper_than_memory(self):
        chip = fresh_chip()
        addr = chip.phys.allocate(64)
        miss, _ = chip.read_block(0, addr)
        hit, tier = chip.read_block(0, addr)
        assert tier is AccessTier.LLC
        assert hit < miss / 4

    def test_aggregate_dram_bandwidth_matches_table2(self):
        chip = fresh_chip()
        n = 2048
        base = chip.phys.allocate(64 * n)
        last = 0.0
        for i in range(n):
            done, _ = chip.read_block(0, base + 64 * i)
            last = max(last, done)
        achieved = (n * 64) / last
        # 4 x 25.6 GBps, minus latency edge effects.
        assert 0.75 * 102.4 <= achieved <= 102.4


class TestStreamBufferSizing:
    def test_littles_law_depth_is_sufficient(self):
        """Depth >= peak_bw * mem_latency / block: the paper derives 32
        from 20 GBps x ~90 ns / 64 B ~= 28."""
        cfg = default_cluster()
        sabre = cfg.node.sabre
        rmc = cfg.node.rmc
        required = rmc.r2p2_peak_gbps * 90.0 / 64.0
        assert sabre.stream_buffer_depth >= required
        assert sabre.stream_buffer_depth <= 2 * required  # not oversized

    def test_rgp_rate_matches_peak_bandwidth_target(self):
        """3 RMC cycles per 64 B request == 21.3 GBps, the 20 GBps
        per-pipeline target that justifies the sizing above."""
        rmc = default_cluster().node.rmc
        gbps = 64.0 / (rmc.rgp_request_cycles * rmc.cycle_ns)
        assert gbps == pytest.approx(21.3, rel=0.02)


class TestEndToEndAnchors:
    def test_single_block_remote_read_3_to_4x_local(self):
        """§2.3: one-sided reads over soNUMA start at 3-4x of a local
        memory access (~90 ns)."""
        cluster = Cluster()
        dst, src = cluster.node(0), cluster.node(1)
        addr = dst.phys.allocate(64)
        buf = src.alloc_buffer(64)
        latency = []

        def proc():
            result = yield src.remote_read(0, addr, 64, buf)
            latency.append(result.timings.end_to_end_ns)

        cluster.sim.process(proc())
        cluster.run()
        assert 2.0 * 90.0 <= latency[0] <= 4.0 * 90.0

    def test_fabric_goodput_ceiling(self):
        """Reply wire overhead caps goodput at link_gbps * 64/80."""
        cfg = ClusterConfig()
        payload = 64.0
        wire = payload + cfg.fabric.header_bytes
        ceiling = cfg.fabric.link_gbps * payload / wire
        assert ceiling == pytest.approx(80.0)


class TestCostModelAnchors:
    def test_strip_8kb_near_2_2us(self):
        """Fig. 1's anchor: stripping an 8 KB object costs ~2.2 us."""
        wire = 147 * 64  # perCL wire size of an 8 KB object
        cost = DEFAULT_COSTS.strip_cost_ns(wire)
        assert 2000.0 <= cost <= 3200.0

    def test_checksum_rate_about_12_cycles_per_byte(self):
        """§2.1: ~a dozen cycles per checksummed byte at 2 GHz."""
        per_byte_cycles = DEFAULT_COSTS.checksum_ns_per_byte * 2.0
        assert 10.0 <= per_byte_cycles <= 14.0

    def test_frontend_factor_reflects_smaller_footprint(self):
        """§7.3: ~7 % smaller instruction working set -> measurably
        cheaper framework fixed cost, but not a free lunch."""
        assert 0.7 <= DEFAULT_COSTS.sabre_frontend_factor < 1.0

"""Tests for the fault-injection layer: schedules, link degradation,
gray/straggler multipliers, clock skew, and their composition with the
crash/failover machinery."""

import pytest

from repro.common.config import ClusterConfig
from repro.common.errors import (
    ConfigError,
    LinkPartitionedError,
    ShardCrashedError,
)
from repro.experiments.runner import SweepRunner
from repro.fabric.packets import read_reply
from repro.faults import FaultInjector, FaultSchedule, FaultWindow
from repro.sonuma.node import Cluster
from repro.sonuma.rpc import RpcEndpoint
from repro.workloads.availability import (
    GRAY_AVAILABILITY_SPEC,
    PARTITION_AVAILABILITY_SPEC,
)


# ----------------------------------------------------------------------
# schedule validation
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule([FaultWindow("meteor", 0.0, 10.0, node=0)])

    def test_empty_window_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule([FaultWindow("gray", 10.0, 10.0, node=0)])

    def test_gray_needs_node_and_sane_multiplier(self):
        with pytest.raises(ConfigError):
            FaultSchedule([FaultWindow("gray", 0.0, 10.0, multiplier=4.0)])
        with pytest.raises(ConfigError):
            FaultSchedule(
                [FaultWindow("gray", 0.0, 10.0, node=0, multiplier=0.5)]
            )

    def test_partition_needs_an_endpoint_and_an_effect(self):
        with pytest.raises(ConfigError):
            FaultSchedule([FaultWindow("partition", 0.0, 10.0, drop=True)])
        with pytest.raises(ConfigError):
            FaultSchedule(
                [FaultWindow("partition", 0.0, 10.0, src=0, dst=1)]
            )
        with pytest.raises(ConfigError):
            FaultSchedule(
                [FaultWindow("partition", 0.0, 10.0, src=1, dst=1, drop=True)]
            )

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule(clock_skew_ns={0: -1.0})

    def test_windows_sorted_and_end_ns(self):
        sched = FaultSchedule(
            [
                FaultWindow("gray", 50.0, 80.0, node=1, multiplier=2.0),
                FaultWindow("partition", 10.0, 95.0, dst=0, drop=True),
            ]
        )
        assert [w.start_ns for w in sched.windows] == [10.0, 50.0]
        assert sched.end_ns() == 95.0
        assert len(sched.windows_of("partition")) == 1

    def test_merged_rejects_conflicting_skews(self):
        a = FaultSchedule(clock_skew_ns={0: 5.0})
        b = FaultSchedule(clock_skew_ns={0: 7.0})
        with pytest.raises(ConfigError):
            a.merged(b)
        c = a.merged(FaultSchedule(clock_skew_ns={1: 3.0}))
        assert c.clock_skew_ns == {0: 5.0, 1: 3.0}

    def test_cycle_builders_shape(self):
        gray = FaultSchedule.gray_cycles(
            [0, 1], first_ns=100.0, width_ns=50.0, gap_ns=25.0, count=3,
            multiplier=4.0,
        )
        assert [w.node for w in gray.windows] == [0, 1, 0]
        assert gray.windows[1].start_ns == 175.0
        strag = FaultSchedule.straggler_cycles(
            [2], first_ns=0.0, width_ns=10.0, gap_ns=0.0, count=2,
            multiplier=3.0,
        )
        assert all(w.kind == "straggler" for w in strag.windows)
        part = FaultSchedule.partition_cycles(
            [(None, 0)], first_ns=5.0, width_ns=10.0, gap_ns=5.0, count=2
        )
        assert all(w.drop for w in part.windows)

    def test_injector_rejects_out_of_range_targets(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        with pytest.raises(ConfigError):
            FaultInjector(
                cluster,
                FaultSchedule(
                    [FaultWindow("gray", 0.0, 10.0, node=5, multiplier=2.0)]
                ),
            )
        with pytest.raises(ConfigError):
            FaultInjector(cluster, FaultSchedule(clock_skew_ns={9: 1.0}))


# ----------------------------------------------------------------------
# fabric-level link degradation
# ----------------------------------------------------------------------
class TestLinkDegradation:
    def test_degrade_and_restore_tokens_compose(self):
        fabric = Cluster(ClusterConfig(nodes=3)).fabric
        a = fabric.degrade_link(0, 1, latency_mult=2.0)
        b = fabric.degrade_link(0, 1, drop=True, bw_mult=0.5)
        assert fabric.degradation(0, 1) == (True, 2.0, 0.5)
        fabric.restore_link(b)
        assert fabric.degradation(0, 1) == (False, 2.0, 1.0)
        fabric.restore_link(a)
        assert fabric.degradation(0, 1) is None
        assert not fabric._faulty

    def test_double_restore_is_an_error(self):
        fabric = Cluster(ClusterConfig(nodes=2)).fabric
        tok = fabric.degrade_link(0, 1, drop=True)
        fabric.restore_link(tok)
        with pytest.raises(ConfigError):
            fabric.restore_link(tok)

    def test_degradation_validation(self):
        fabric = Cluster(ClusterConfig(nodes=2)).fabric
        with pytest.raises(ConfigError):
            fabric.degrade_link(0, 0, drop=True)
        with pytest.raises(ConfigError):
            fabric.degrade_link(0, 1, latency_mult=0.5)
        with pytest.raises(ConfigError):
            fabric.degrade_link(0, 1, bw_mult=1.5)
        with pytest.raises(ConfigError):
            fabric.degrade_link(0, 1)  # no effect at all

    def test_severed_is_bidirectional_reachable_is_not_confused(self):
        fabric = Cluster(ClusterConfig(nodes=3)).fabric
        tok = fabric.degrade_link(0, 1, drop=True)
        assert fabric.link_severed(0, 1)
        assert fabric.link_severed(1, 0)  # replies cannot return either
        assert not fabric.link_severed(0, 2)
        assert not fabric.reachable(0, 1)
        assert fabric.reachable(2, 1)
        fabric.restore_link(tok)
        assert fabric.reachable(0, 1)

    def test_latency_multiplier_slows_delivery(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        fabric, sim = cluster.fabric, cluster.sim
        arrivals = []
        fabric.attach(1, lambda p: arrivals.append(sim.now))
        fabric.send(read_reply(0, 1, 1, 0, b"x" * 64))
        sim.run()
        healthy = arrivals[0]

        cluster2 = Cluster(ClusterConfig(nodes=2))
        fabric2, sim2 = cluster2.fabric, cluster2.sim
        arrivals2 = []
        fabric2.attach(1, lambda p: arrivals2.append(sim2.now))
        fabric2.degrade_link(0, 1, latency_mult=3.0, bw_mult=0.5)
        fabric2.send(read_reply(0, 1, 1, 0, b"x" * 64))
        sim2.run()
        assert arrivals2[0] > healthy

    def test_drop_window_does_not_lose_inflight_packets(self):
        """The drain semantics: a drop window refuses *new*
        conversations but never destroys packets already on the wire."""
        cluster = Cluster(ClusterConfig(nodes=2))
        fabric, sim = cluster.fabric, cluster.sim
        arrivals = []
        fabric.attach(1, lambda p: arrivals.append(sim.now))
        fabric.send(read_reply(0, 1, 1, 0, b"x" * 64))
        fabric.degrade_link(0, 1, drop=True)  # opens after the send
        sim.run()
        assert len(arrivals) == 1
        assert fabric.packets_dropped == 0


# ----------------------------------------------------------------------
# RPC-level behavior under partitions and gray windows
# ----------------------------------------------------------------------
def make_pair():
    cluster = Cluster()
    a = RpcEndpoint(cluster.node(0), workers=1)
    b = RpcEndpoint(cluster.node(1), workers=1)
    return cluster, a, b


class TestRpcUnderFaults:
    def test_severed_link_refuses_new_calls_with_typed_error(self):
        cluster, a, b = make_pair()
        a.register("echo", lambda payload: (payload, 10.0))
        cluster.fabric.degrade_link(1, 0, drop=True)
        replies = []

        def client():
            reply = yield b.call(0, "echo", b"hi")
            replies.append(reply)

        cluster.sim.process(client())
        cluster.run()
        assert isinstance(replies[0], LinkPartitionedError)
        assert isinstance(replies[0], ShardCrashedError)  # crash paths work
        assert cluster.fabric.partition_refusals == 1
        assert a.served == 0  # nothing reached the server

    def test_inflight_call_drains_through_drop_window(self):
        """A call issued before the window opens completes: requests
        already sent (and their replies) drain losslessly."""
        cluster, a, b = make_pair()
        a.register("slow", lambda payload: (b"ok", 5_000.0))
        replies = []

        def client():
            reply = yield b.call(0, "slow", b"x")
            replies.append(reply)

        cluster.sim.process(client())
        # Open the drop window while the request is being served.
        cluster.sim.call_at(
            1_000.0, lambda: cluster.fabric.degrade_link(1, 0, drop=True)
        )
        cluster.run()
        assert replies == [b"ok"]

    def test_gray_window_slows_service(self):
        def run(multiplier):
            cluster, a, b = make_pair()
            a.service_multiplier = multiplier
            a.register("work", lambda payload: (b"", 500.0))
            done = []

            def client():
                yield b.call(0, "work", b"x")
                done.append(cluster.sim.now)

            cluster.sim.process(client())
            cluster.run()
            return done[0]

        assert run(8.0) > run(1.0) + 3_000.0  # dispatch+service both scale


# ----------------------------------------------------------------------
# injector end-to-end on a bare cluster
# ----------------------------------------------------------------------
class TestInjector:
    def test_gray_window_applies_and_restores_both_planes(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        RpcEndpoint(cluster.node(0), workers=1)
        RpcEndpoint(cluster.node(1), workers=1)
        inj = FaultInjector(
            cluster,
            FaultSchedule(
                [FaultWindow("gray", 100.0, 200.0, node=0, multiplier=6.0)]
            ),
        )
        node = cluster.nodes[0]
        probes = {}

        def probe(label):
            probes[label] = (
                node.chip._svc_mult,
                node.rpc_endpoint.service_multiplier,
                inj.any_active(),
            )

        sim = cluster.sim
        sim.call_at(50.0, probe, "before")
        sim.call_at(150.0, probe, "during")
        sim.call_at(250.0, probe, "after")
        sim.run()
        assert probes["before"] == (1.0, 1.0, False)
        assert probes["during"] == (6.0, 6.0, True)
        assert probes["after"] == (1.0, 1.0, False)
        assert inj.stats.gray_windows == 1
        assert inj.stats.windows_closed == 1

    def test_straggler_window_slows_rpc_plane_only(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        RpcEndpoint(cluster.node(0), workers=1)
        RpcEndpoint(cluster.node(1), workers=1)
        FaultInjector(
            cluster,
            FaultSchedule(
                [
                    FaultWindow(
                        "straggler", 100.0, 200.0, node=0, multiplier=4.0
                    )
                ]
            ),
        )
        node = cluster.nodes[0]
        probes = {}
        cluster.sim.call_at(
            150.0,
            lambda: probes.update(
                chip=node.chip._svc_mult,
                rpc=node.rpc_endpoint.service_multiplier,
            ),
        )
        cluster.sim.run()
        assert probes["chip"] == 1.0  # one-sided reads keep full speed
        assert probes["rpc"] == 4.0

    def test_overlapping_windows_multiply(self):
        cluster = Cluster(ClusterConfig(nodes=2))
        RpcEndpoint(cluster.node(0), workers=1)
        inj = FaultInjector(
            cluster,
            FaultSchedule(
                [
                    FaultWindow("gray", 0.0, 300.0, node=0, multiplier=2.0),
                    FaultWindow("gray", 100.0, 200.0, node=0, multiplier=3.0),
                ]
            ),
        )
        got = {}
        cluster.sim.call_at(
            150.0, lambda: got.update(m=inj.active_multiplier(0))
        )
        cluster.sim.call_at(
            250.0, lambda: got.update(late=inj.active_multiplier(0))
        )
        cluster.sim.run()
        assert got["m"] == 6.0
        assert got["late"] == 2.0

    def test_partition_window_expands_wildcards(self):
        cluster = Cluster(ClusterConfig(nodes=4))
        inj = FaultInjector(
            cluster,
            FaultSchedule(
                [FaultWindow("partition", 10.0, 20.0, dst=2, drop=True)]
            ),
        )
        fabric = cluster.fabric
        hit = {}
        cluster.sim.call_at(
            15.0,
            lambda: hit.update(
                severed=[fabric.link_severed(s, 2) for s in (0, 1, 3)],
                open_links=len(fabric._link_faults),
            ),
        )
        cluster.sim.run()
        assert hit["severed"] == [True, True, True]
        assert hit["open_links"] == 3  # every ingress link, nothing else
        assert inj.stats.links_degraded == 3
        assert not fabric._link_faults  # all restored at close

    def test_crash_inside_partition_window_recovers_clean(self):
        """The composition fix: ``set_alive`` and link degradation never
        leak into each other.  A node that crashes inside a partition
        window and recovers after it closes comes back with clean link
        tables and full reachability."""
        cluster = Cluster(ClusterConfig(nodes=3))
        FaultInjector(
            cluster,
            FaultSchedule(
                [FaultWindow("partition", 100.0, 300.0, dst=1, drop=True)]
            ),
        )
        fabric, sim = cluster.fabric, cluster.sim
        sim.call_at(150.0, fabric.set_alive, 1, False)  # crash mid-window
        sim.call_at(400.0, fabric.set_alive, 1, True)  # recover after close
        checks = {}
        sim.call_at(
            200.0,
            lambda: checks.update(
                down_and_severed=(
                    not fabric.alive(1) and fabric.link_severed(0, 1)
                )
            ),
        )
        sim.call_at(
            350.0,
            lambda: checks.update(
                still_down_link_clean=(
                    not fabric.alive(1)
                    and not fabric._link_faults
                    and not fabric._faulty
                )
            ),
        )
        sim.call_at(
            450.0,
            lambda: checks.update(
                recovered_clean=(
                    fabric.alive(1)
                    and fabric.reachable(0, 1)
                    and fabric.degradation(0, 1) is None
                )
            ),
        )
        sim.run()
        assert checks == {
            "down_and_severed": True,
            "still_down_link_clean": True,
            "recovered_clean": True,
        }


# ----------------------------------------------------------------------
# clock skew
# ----------------------------------------------------------------------
class TestClockSkew:
    def test_skewed_observer_lags_membership_transitions(self):
        cluster = Cluster(ClusterConfig(nodes=3))
        fabric, sim = cluster.fabric, cluster.sim
        fabric.set_clock_skew(2, 100.0)
        fabric.set_alive(1, False)  # crash at t=0
        views = {}
        sim.call_at(
            50.0,
            lambda: views.update(
                sharp=fabric.observed_alive(0, 1),
                skewed=fabric.observed_alive(2, 1),
            ),
        )
        sim.call_at(
            150.0,
            lambda: views.update(late=fabric.observed_alive(2, 1)),
        )
        sim.run()
        assert views["sharp"] is False  # unskewed observer sees it now
        assert views["skewed"] is True  # stale lease still held
        assert views["late"] is False  # skew elapsed, crash visible

    def test_skewed_watchdog_deadline_stretches(self):
        cluster = Cluster()
        a = RpcEndpoint(cluster.node(0), workers=1)
        b = RpcEndpoint(cluster.node(1), workers=1)
        cluster.fabric.set_clock_skew(1, 2_000.0)
        a.register("never", lambda payload: (b"", 10.0))
        # Crash the server before serving so the watchdog must fire.
        cluster.sim.call_at(
            10.0, cluster.fabric.set_alive, 0, False
        )
        done = []

        def client():
            reply = yield b.call(0, "never", b"x", timeout_ns=500.0)
            done.append((cluster.sim.now, reply))

        cluster.sim.process(client())
        cluster.run()
        t, reply = done[0]
        assert isinstance(reply, ShardCrashedError)
        # Deadline = marshal + timeout + skew: far past the bare 500 ns.
        assert t >= 2_500.0


# ----------------------------------------------------------------------
# determinism: serial vs parallel sweeps of the new fault specs
# ----------------------------------------------------------------------
class TestFaultSweepDeterminism:
    def test_gray_parallel_sweep_byte_identical_to_serial(self):
        serial = SweepRunner(GRAY_AVAILABILITY_SPEC, scale=0.1).run()
        parallel = SweepRunner(
            GRAY_AVAILABILITY_SPEC, scale=0.1, jobs=2
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_partition_parallel_sweep_byte_identical_to_serial(self):
        serial = SweepRunner(PARTITION_AVAILABILITY_SPEC, scale=0.1).run()
        parallel = SweepRunner(
            PARTITION_AVAILABILITY_SPEC, scale=0.1, jobs=2
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)


# ----------------------------------------------------------------------
# window-boundary metering
# ----------------------------------------------------------------------
class TestWindowBoundaryMetering:
    """Pin the boundary semantics the availability metering relies on:
    ``any_active()`` (what ``reads_during_fault`` samples at read
    completion) treats a window as half-open ``[start, end)`` for any
    event scheduled after the injector was built — open/close callbacks
    were enqueued at construction, so at equal times they fire first."""

    def _probed(self, windows):
        cluster = Cluster(ClusterConfig(nodes=2))
        RpcEndpoint(cluster.node(0), workers=1)
        RpcEndpoint(cluster.node(1), workers=1)
        inj = FaultInjector(cluster, FaultSchedule(windows))
        probes = {}

        def probe(t):
            probes[t] = (inj.any_active(), inj.active_multiplier(0))

        for t in (99.0, 100.0, 150.0, 200.0, 250.0):
            cluster.sim.call_at(t, probe, t)
        cluster.sim.run()
        return inj, probes

    def test_event_at_window_open_counts_as_during_fault(self):
        inj, probes = self._probed(
            [FaultWindow("gray", 100.0, 200.0, node=0, multiplier=6.0)]
        )
        assert probes[99.0] == (False, 1.0)
        # t == open: the open callback fired first, so a read completing
        # exactly at the boundary meters as a fault read.
        assert probes[100.0] == (True, 6.0)
        assert probes[150.0] == (True, 6.0)
        # t == close: the close callback fired first — the window is
        # over, the multiplier restored, nothing meters against it.
        assert probes[200.0] == (False, 1.0)
        assert probes[250.0] == (False, 1.0)
        assert inj.stats.windows_closed == 1

    def test_back_to_back_windows_hand_off_at_the_shared_boundary(self):
        """Adjacent windows [100,200) + [200,300): at the shared instant
        the first closes before the second opens, so the boundary event
        sees exactly one window active with only the second multiplier —
        no double-composed slowdown, no metering gap."""
        inj, probes = self._probed(
            [
                FaultWindow("gray", 100.0, 200.0, node=0, multiplier=6.0),
                FaultWindow("gray", 200.0, 300.0, node=0, multiplier=3.0),
            ]
        )
        assert probes[150.0] == (True, 6.0)
        assert probes[200.0] == (True, 3.0)
        assert probes[250.0] == (True, 3.0)
        assert inj.stats.gray_windows == 2
        assert inj.stats.windows_closed == 2

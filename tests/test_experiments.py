"""Tests for the declarative experiment framework: spec expansion,
sweep execution (serial, parallel, cached), the registry, and the CLI
surface built on top of it."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.experiments import (
    ExperimentSpec,
    SweepRunner,
    Variant,
    registry,
    run_sweep,
)
from repro.harness.cli import main
from repro.harness.fig7 import FIG7A_SPEC, run_fig7a


def _echo_point(ctx):
    return {f"{ctx.variant}_value": ctx.params["x"] * ctx.params["factor"]}


ECHO_SPEC = ExperimentSpec(
    name="echo",
    description="toy spec for framework tests",
    axes={"x": (1, 2, 3)},
    variants=(Variant("a", {"factor": 10}), Variant("b", {"factor": 100})),
    headers=("x", "a_value", "b_value"),
    point_fn=_echo_point,
)


class TestSpecExpansion:
    def test_grid_times_variants_in_order(self):
        points = ECHO_SPEC.expand()
        assert len(points) == 6
        assert [p.axis_values["x"] for p in points] == [1, 1, 2, 2, 3, 3]
        assert [p.variant.name for p in points] == ["a", "b"] * 3
        assert [p.index for p in points] == list(range(6))

    def test_axis_override_and_unknown_axis(self):
        points = ECHO_SPEC.expand(axes={"x": (7,)})
        assert [p.axis_values["x"] for p in points] == [7, 7]
        with pytest.raises(ConfigError):
            ECHO_SPEC.expand(axes={"nope": (1,)})

    def test_overrides_win_over_variant_params(self):
        points = ECHO_SPEC.expand(overrides={"factor": 2})
        assert all(p.params["factor"] == 2 for p in points)

    def test_per_point_seeds_distinct_and_stable(self):
        a = ECHO_SPEC.expand()
        b = ECHO_SPEC.expand()
        assert [p.seed for p in a] == [p.seed for p in b]
        assert len({p.seed for p in a}) == len(a)

    def test_derive_hook_shapes_params(self):
        spec = ExperimentSpec(
            name="derived",
            axes={"x": (2, 4)},
            derive=lambda p: {**p, "doubled": p["x"] * 2},
            point_fn=lambda ctx: {"y": ctx.params["doubled"]},
        )
        rows = SweepRunner(spec).run().rows
        assert rows == [{"x": 2, "y": 4}, {"x": 4, "y": 8}]


class TestSweepRunner:
    def test_rows_merge_variants(self):
        result = SweepRunner(ECHO_SPEC).run()
        assert result.headers == ("x", "a_value", "b_value")
        assert result.rows == [
            {"x": 1, "a_value": 10, "b_value": 100},
            {"x": 2, "a_value": 20, "b_value": 200},
            {"x": 3, "a_value": 30, "b_value": 300},
        ]

    def test_finalize_row_hook(self):
        spec = ExperimentSpec(
            name="finalized",
            axes={"x": (1, 2)},
            variants=ECHO_SPEC.variants,
            defaults={},
            finalize_row=lambda row: {**row, "sum": row["a_value"] + row["b_value"]},
            point_fn=_echo_point,
        )
        rows = SweepRunner(spec).run().rows
        assert rows[0]["sum"] == 110
        assert rows[1]["sum"] == 220

    def test_parallel_matches_serial(self):
        serial = SweepRunner(ECHO_SPEC).run()
        parallel = SweepRunner(ECHO_SPEC, jobs=3).run()
        assert serial.rows == parallel.rows

    def test_jobs_validation(self):
        with pytest.raises(ConfigError):
            SweepRunner(ECHO_SPEC, jobs=0)

    def test_cache_round_trip(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = SweepRunner(ECHO_SPEC, cache_dir=cache).run()
        second = SweepRunner(ECHO_SPEC, cache_dir=cache).run()
        assert first.points_cached == 0
        assert second.points_cached == second.points_total == 6
        assert first.rows == second.rows

    def test_cache_key_depends_on_scale(self, tmp_path):
        cache = str(tmp_path / "cache")
        SweepRunner(ECHO_SPEC, scale=1.0, cache_dir=cache).run()
        other = SweepRunner(ECHO_SPEC, scale=0.5, cache_dir=cache).run()
        assert other.points_cached == 0

    def test_json_artifact(self, tmp_path):
        path = tmp_path / "echo.json"
        result = run_sweep(ECHO_SPEC)
        result.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "echo"
        assert payload["rows"] == result.rows


class TestRegistry:
    def test_builtin_experiments_registered(self):
        names = registry.names()
        for expected in (
            "fig1", "fig7a", "fig7b", "fig8", "fig9a", "fig9b", "fig10",
            "table1", "table2", "ablation_source_locking",
            "ablation_stream_buffer_depth",
        ):
            assert expected in names

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            registry.get("not_an_experiment")

    def test_register_and_unregister(self):
        spec = ExperimentSpec(name="temp_spec", point_fn=lambda ctx: {"v": 1})
        registry.register(spec)
        try:
            assert registry.get("temp_spec") is spec
        finally:
            registry.unregister("temp_spec")
        with pytest.raises(ConfigError):
            registry.get("temp_spec")


class TestFigureSpecs:
    def test_fig7a_parallel_sweep_byte_identical_to_serial(self):
        axes = {"object_size": (64, 512)}
        serial = SweepRunner(FIG7A_SPEC, scale=0.1, axes=axes).run()
        parallel = SweepRunner(FIG7A_SPEC, scale=0.1, axes=axes, jobs=2).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_wrapper_matches_direct_sweep(self):
        headers, rows = run_fig7a(scale=0.1, sizes=(64, 512))
        direct = SweepRunner(
            FIG7A_SPEC,
            scale=0.1,
            axes={"object_size": (64, 512)},
            overrides={"seed": 5},
        ).run()
        assert tuple(headers) == direct.headers
        assert repr(rows) == repr(direct.rows)


class TestCliExtensions:
    def test_list_prints_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out
        assert "ablation_source_locking" in out

    def test_jobs_and_json_out(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = main(
            ["fig10", "--scale", "0.1", "--jobs", "2", "--json-out", str(path)]
        )
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fig10"
        assert payload["jobs"] == 2
        assert {"object_size", "speedup"} <= set(payload["rows"][0])

    def test_cache_dir_flag(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["table2", "--cache-dir", cache]) == 0
        assert main(["table2", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "9/9 points cached" in out

"""Tests for the transactional workload mixes and their registered
experiments (abort rate vs. write fraction, shard scaling), including
the parallel-equals-serial determinism contract."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import SweepRunner, registry
from repro.harness.cli import main
from repro.workloads.txn_mix import (
    PROTOCOL_VARIANTS,
    TXN_ABORT_RATE_SPEC,
    TXN_SHARD_SCALING_SPEC,
    TxnMixConfig,
    run_txn_mix,
)
from repro.workloads.protocols import protocol_names


def tiny_cfg(**kw):
    defaults = dict(
        txn_size=3,
        writes_per_txn=2,
        rmw_fraction=0.5,
        distribution="uniform",
        mechanism="sabre",
        n_shards=2,
        n_objects=32,
        sessions_per_client=1,
        duration_ns=50_000.0,
        warmup_ns=8_000.0,
        seed=3,
    )
    defaults.update(kw)
    return TxnMixConfig(**defaults)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            tiny_cfg(txn_size=0).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(txn_size=64, n_objects=32).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(writes_per_txn=4, txn_size=3).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(rmw_fraction=1.5).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(distribution="gaussian").validate()
        with pytest.raises(ConfigError):
            tiny_cfg(mechanism="bogus").validate()
        with pytest.raises(ConfigError):
            tiny_cfg(sessions_per_client=0).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(warmup_ns=60_000.0).validate()

    def test_variants_cover_every_registered_protocol(self):
        assert tuple(name for _label, name in PROTOCOL_VARIANTS) == protocol_names()


@pytest.mark.smoke
class TestWorkload:
    def test_read_only_mix_commits_without_aborts(self):
        result = run_txn_mix(tiny_cfg(rmw_fraction=0.0))
        assert result.commits > 0
        assert result.rmw_commits == 0
        assert result.lock_aborts == 0
        assert result.undetected_violations == 0

    def test_rmw_mix_commits_and_advances_versions(self):
        result = run_txn_mix(tiny_cfg(rmw_fraction=1.0))
        assert result.rmw_commits > 0
        assert result.mean_commit_ns > 0
        assert result.undetected_violations == 0
        assert result.torn_reads_observed == 0

    def test_contention_produces_detected_aborts(self):
        """Hot keys + several sessions: conflicts must happen and be
        *detected* (aborts/retries), never leak to the audit."""
        result = run_txn_mix(
            tiny_cfg(
                n_objects=8,
                distribution="zipfian",
                zipf_theta=1.2,
                sessions_per_client=2,
                duration_ns=80_000.0,
            )
        )
        assert result.commits > 0
        assert result.lock_aborts + result.validation_aborts > 0
        assert result.undetected_violations == 0
        assert result.torn_reads_observed == 0

    def test_identical_seeds_reproduce_identical_results(self):
        a = run_txn_mix(tiny_cfg())
        b = run_txn_mix(tiny_cfg())
        assert a.commits == b.commits
        assert a.commit_latency.values == b.commit_latency.values
        assert a.txn_rows == b.txn_rows
        assert a.shard_rows == b.shard_rows


class TestSpecs:
    def test_registered(self):
        names = registry.names()
        assert "txn_abort_rate" in names
        assert "txn_shard_scaling" in names

    def test_abort_rate_parallel_sweep_byte_identical_to_serial(self):
        axes = {"rmw_fraction": (0.0, 0.75)}
        serial = SweepRunner(TXN_ABORT_RATE_SPEC, scale=0.05, axes=axes).run()
        parallel = SweepRunner(
            TXN_ABORT_RATE_SPEC, scale=0.05, axes=axes, jobs=4
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_scaling_parallel_sweep_byte_identical_to_serial(self):
        axes = {"shards": (1, 2)}
        serial = SweepRunner(TXN_SHARD_SCALING_SPEC, scale=0.05, axes=axes).run()
        parallel = SweepRunner(
            TXN_SHARD_SCALING_SPEC, scale=0.05, axes=axes, jobs=4
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_abort_rate_grows_with_write_fraction_under_sabre(self):
        axes = {"rmw_fraction": (0.0, 1.0)}
        result = SweepRunner(TXN_ABORT_RATE_SPEC, scale=0.2, axes=axes).run()
        ro, wr = result.rows
        assert ro["sabre_abort_rate"] == 0.0
        assert wr["sabre_abort_rate"] > 0.0
        for label, _name in PROTOCOL_VARIANTS:
            if label == "remote":
                continue
            assert wr[f"{label}_violations"] == 0
            assert wr[f"{label}_torn_reads"] == 0

    def test_scaling_rows_shape(self):
        result = SweepRunner(
            TXN_SHARD_SCALING_SPEC, scale=0.05, axes={"shards": (2,)}
        ).run()
        (row,) = result.rows
        assert row["shards"] == 2
        assert row["commits_per_us"] > 0
        assert row["undetected_violations"] == 0

    def test_cli_lists_txn_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "txn_abort_rate" in out
        assert "txn_shard_scaling" in out

"""Unit tests for the 2D mesh model."""

import pytest

from repro.common.config import NocConfig
from repro.common.errors import ConfigError
from repro.noc.mesh import Mesh


@pytest.fixture
def mesh():
    return Mesh(NocConfig())


def test_coord_layout(mesh):
    assert mesh.coord(0) == (0, 0)
    assert mesh.coord(3) == (3, 0)
    assert mesh.coord(4) == (0, 1)
    assert mesh.coord(15) == (3, 3)


def test_coord_out_of_range(mesh):
    with pytest.raises(ConfigError):
        mesh.coord(16)


def test_hops_manhattan(mesh):
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 15) == 6
    assert mesh.hops(5, 6) == 1


def test_hop_latency_matches_table2(mesh):
    # 3 cycles/hop at 2 GHz = 1.5 ns/hop.
    assert mesh.latency_ns(0, 1) == pytest.approx(1.5)
    assert mesh.latency_ns(0, 15) == pytest.approx(9.0)


def test_payload_serialization_adds_flits(mesh):
    # 64 B on 16 B links: 4 flits -> 3 extra link cycles at 2 GHz.
    base = mesh.latency_ns(0, 1)
    with_payload = mesh.latency_ns(0, 1, payload_bytes=64)
    assert with_payload == pytest.approx(base + 3 / 2.0)


def test_small_payload_fits_one_flit(mesh):
    assert mesh.latency_ns(0, 1, payload_bytes=16) == mesh.latency_ns(0, 1)


def test_llc_bank_interleaving(mesh):
    banks = {mesh.llc_bank_tile(64 * i) for i in range(16)}
    assert banks == set(range(16))
    assert mesh.llc_bank_tile(64) == mesh.llc_bank_tile(64 + 63)


def test_mc_tiles_on_edges(mesh):
    for ch in range(4):
        x, _ = mesh.coord(mesh.mc_tile(ch))
        assert x in (0, 3)


def test_rmc_tiles_on_top_row(mesh):
    for backend in range(4):
        tile = mesh.rmc_tile(backend)
        assert mesh.coord(tile)[1] == 0
    assert len({mesh.rmc_tile(b) for b in range(4)}) == 4


def test_mean_hops_symmetricish(mesh):
    # Mean distance to a corner exceeds mean distance to the center.
    assert mesh.mean_hops_to(0) > mesh.mean_hops_to(5)

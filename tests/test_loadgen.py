"""Load-generator tests: trace synthesis, the wall-clock open-loop
client against a live gateway, the saturation sweep, and the
registered ``serve_load_sweep`` experiment."""

import asyncio

import pytest

from repro.common.errors import ConfigError
from repro.experiments import SweepRunner, registry
from repro.loadgen.client import run_open_loop
from repro.loadgen.sweep import (
    SERVE_LOAD_SWEEP_SPEC,
    SweepConfig,
    SweepResult,
    run_sweep,
    write_artifact,
)
from repro.loadgen.trace import TraceConfig, build_trace
from repro.serve.gateway import Gateway
from repro.serve.settings import ServeSettings


# ----------------------------------------------------------------------
# trace synthesis
# ----------------------------------------------------------------------


class TestTrace:
    def test_same_config_same_trace(self):
        cfg = TraceConfig(qps=5000.0, n_ops=200, txn_fraction=0.1, seed=9)
        assert build_trace(cfg) == build_trace(cfg)

    def test_different_seed_different_trace(self):
        a = build_trace(TraceConfig(n_ops=100, seed=1))
        b = build_trace(TraceConfig(n_ops=100, seed=2))
        assert a != b

    def test_arrivals_sorted_and_poisson_paced(self):
        trace = build_trace(TraceConfig(qps=1_000_000.0, n_ops=500, seed=3))
        stamps = [op.at_ns for op in trace.ops]
        assert stamps == sorted(stamps)
        # Mean gap should approximate 1/qps = 1000 ns (loose bound:
        # 500 exponential draws).
        mean_gap = stamps[-1] / (len(stamps) - 1)
        assert 700.0 < mean_gap < 1400.0

    def test_workload_mix_respected(self):
        trace = build_trace(
            TraceConfig(workload="A", n_ops=2000, seed=5)
        )
        puts = sum(1 for op in trace.ops if op.kind == "put")
        # Workload A is a 50/50 update mix.
        assert 0.4 < puts / len(trace.ops) < 0.6
        read_only = build_trace(TraceConfig(workload="C", n_ops=300, seed=5))
        assert all(op.kind == "get" for op in read_only.ops)

    def test_txn_fraction_and_distinct_keys(self):
        trace = build_trace(
            TraceConfig(
                n_ops=400,
                txn_fraction=0.5,
                txn_reads=2,
                txn_writes=2,
                seed=11,
            )
        )
        txns = [op for op in trace.ops if op.kind == "txn"]
        assert 0.35 < len(txns) / len(trace.ops) < 0.65
        for op in txns:
            keys = op.read_keys + op.write_keys
            assert len(keys) == 4
            assert len(set(keys)) == len(keys)  # distinct within one txn

    def test_duration_overrides_n_ops(self):
        cfg = TraceConfig(qps=1000.0, n_ops=5, duration_s=1.0)
        assert cfg.total_ops() == 1000
        assert len(build_trace(cfg)) == 1000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"qps": 0.0},
            {"workload": "Z"},
            {"distribution": "pareto"},
            {"txn_fraction": 1.5},
            {"txn_fraction": 0.5, "txn_reads": 0, "txn_writes": 0},
            {"txn_reads": 600, "n_objects": 512},
            {"n_ops": 0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigError):
            build_trace(TraceConfig(**kwargs))

    def test_uniform_distribution_spreads_keys(self):
        trace = build_trace(
            TraceConfig(
                distribution="uniform", n_ops=800, n_objects=64, seed=2
            )
        )
        distinct = {op.key for op in trace.ops}
        assert len(distinct) > 40


# ----------------------------------------------------------------------
# wall-clock open-loop client (against a live gateway)
# ----------------------------------------------------------------------


class TestOpenLoopClient:
    def test_client_drives_live_gateway(self):
        trace = build_trace(
            TraceConfig(qps=2000.0, n_ops=80, workload="B", seed=4)
        )

        async def scenario():
            gw = Gateway(ServeSettings.from_env(environ={}, port=0))
            await gw.start()
            for _ in range(200):
                if gw.bridge.ready:
                    break
                await asyncio.sleep(0.01)
            try:
                return await run_open_loop(
                    trace, gw.settings.host, gw.port, time_scale=1.0
                )
            finally:
                await gw.drain()

        report = asyncio.run(scenario())
        assert report.n_ops == 80
        assert report.transport_errors == 0
        assert report.n_ok == 80  # B is get/put over existing keys
        assert report.status_counts == {200: 80}
        assert report.p50_ms > 0
        assert 0 < report.achieved_ratio
        payload = report.to_dict()
        assert payload["n_ok"] == 80 and "ops" not in payload

    def test_unreachable_server_counts_transport_errors(self):
        trace = build_trace(TraceConfig(qps=10_000.0, n_ops=5, seed=4))

        async def scenario():
            # Grab a port and close it so nothing listens there.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return await run_open_loop(
                trace, "127.0.0.1", port, time_scale=100.0
            )

        report = asyncio.run(scenario())
        assert report.transport_errors == 5
        assert report.n_ok == 0
        assert report.n_errors == 5


# ----------------------------------------------------------------------
# the saturation sweep
# ----------------------------------------------------------------------


def _small_sweep(**overrides):
    cfg = dict(
        qps_start=8_000_000.0,
        qps_factor=4.0,
        max_steps=3,
        ops_per_step=150,
        workload="C",
        seed=6,
    )
    cfg.update(overrides)
    return SweepConfig(**cfg)


class TestSweep:
    def test_sweep_is_deterministic(self):
        first = run_sweep(_small_sweep())
        second = run_sweep(_small_sweep())
        assert first.to_dict() == second.to_dict()
        assert first.steps
        assert first.peak_qps > 0
        assert first.undetected_violations == 0

    def test_sweep_steps_offered_qps_geometrically(self):
        result = run_sweep(_small_sweep())
        offered = [step["offered_qps"] for step in result.steps]
        for prev, cur in zip(offered, offered[1:]):
            assert cur == pytest.approx(prev * 4.0)
        # Stops either at the step budget or at the first collapse.
        if result.collapsed:
            assert result.steps[-1]["achieved_ratio"] < 0.85
        else:
            assert len(result.steps) == 3

    def test_artifact_round_trip(self, tmp_path):
        import json

        result = run_sweep(_small_sweep(max_steps=1))
        path = tmp_path / "sweep.json"
        write_artifact(result, str(path))
        payload = json.loads(path.read_text())
        assert payload["peak_qps"] == result.peak_qps
        assert payload["config"]["workload"] == "C"
        assert len(payload["steps"]) == len(result.steps)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            run_sweep(_small_sweep(qps_factor=1.0))
        with pytest.raises(ConfigError):
            run_sweep(_small_sweep(qps_start=0.0))
        with pytest.raises(ConfigError):
            run_sweep(_small_sweep(collapse_ratio=0.0))
        with pytest.raises(ConfigError):
            run_sweep(_small_sweep(ops_per_step=0))

    def test_result_properties_on_synthetic_steps(self):
        cfg = _small_sweep()
        result = SweepResult(
            config=cfg,
            steps=[
                {
                    "offered_qps": 1e6,
                    "achieved_qps": 9.9e5,
                    "achieved_ratio": 0.99,
                    "undetected_violations": 0.0,
                },
                {
                    "offered_qps": 2e6,
                    "achieved_qps": 1.2e6,
                    "achieved_ratio": 0.60,
                    "undetected_violations": 0.0,
                },
            ],
        )
        assert result.collapsed
        assert result.knee_qps == 1e6
        assert result.peak_qps == 1.2e6
        empty = SweepResult(config=cfg)
        assert not empty.collapsed and empty.peak_qps == 0.0
        first_dies = SweepResult(
            config=cfg,
            steps=[
                {
                    "offered_qps": 1e6,
                    "achieved_qps": 1e5,
                    "achieved_ratio": 0.1,
                    "undetected_violations": 0.0,
                }
            ],
        )
        assert first_dies.knee_qps == 0.0


# ----------------------------------------------------------------------
# the registered experiment spec
# ----------------------------------------------------------------------


class TestServeLoadSweepSpec:
    def test_spec_is_registered(self):
        assert registry.get("serve_load_sweep") is SERVE_LOAD_SWEEP_SPEC
        assert "serve_load_sweep" in registry.names()

    def test_serial_matches_jobs_parity(self):
        """ISSUE requirement: serial == ``--jobs`` for the new spec.
        Restricted to one workload at a small scale to stay tier-1
        fast; every point is a pure function of config + seed, so the
        rows must match byte for byte."""
        axes = {"workload": ("C",)}
        serial = SweepRunner(
            SERVE_LOAD_SWEEP_SPEC, scale=0.1, axes=axes
        ).run()
        parallel = SweepRunner(
            SERVE_LOAD_SWEEP_SPEC, scale=0.1, axes=axes, jobs=2
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)
        row = serial.rows[0]
        assert row["sabre_peak_qps"] > 0
        assert row["percl_peak_qps"] > 0
        assert row["sabre_violations"] == 0.0

    def test_qa_checks_pass_on_scaled_run(self):
        from repro.experiments.qa import evaluate

        rows = SweepRunner(
            SERVE_LOAD_SWEEP_SPEC, scale=0.1, axes={"workload": ("B",)}
        ).run().rows
        report = evaluate("sweep", SERVE_LOAD_SWEEP_SPEC.qa_checks, rows)
        assert report.verdict == "pass"

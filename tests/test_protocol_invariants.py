"""soNUMA protocol invariants (§5/§5.1).

The transport keeps a strict request-reply discipline: every data
request gets exactly one reply — even when the SABRe aborts (junk
replies) — and every SABRe registration gets exactly one validation
packet.  These tests count packets on the fabric links directly.
"""

from collections import Counter as PyCounter

import pytest

from repro.common.config import ClusterConfig, SabreMode
from repro.fabric.packets import PacketKind
from repro.objstore.layout import RawLayout, stamped_payload
from repro.objstore.store import ObjectStore
from repro.sonuma.node import Cluster
from repro.workloads.microbench import Microbenchmark, MicrobenchConfig


def packet_census(cluster):
    """Count every packet kind that crossed the fabric."""
    census = PyCounter()
    original = cluster.fabric.send

    def counting_send(pkt):
        census[pkt.kind] += 1
        return original(pkt)

    cluster.fabric.send = counting_send
    for node in cluster.nodes:
        node.fabric = cluster.fabric
    return census


def run_contended_microbench(mode=SabreMode.SPECULATIVE, **kw):
    defaults = dict(
        mechanism="sabre",
        object_size=512,
        n_objects=8,
        readers=4,
        writers=4,
        duration_ns=50_000.0,
        warmup_ns=6_000.0,
        seed=21,
        cluster=ClusterConfig().with_sabre_mode(mode),
    )
    defaults.update(kw)
    bench = Microbenchmark(MicrobenchConfig(**defaults))
    census = packet_census(bench.cluster)
    bench.run()
    return census, bench


class TestRequestReplyInvariant:
    def test_every_sabre_request_gets_exactly_one_reply(self):
        census, _bench = run_contended_microbench()
        assert census[PacketKind.SABRE_REQUEST] > 0
        assert census[PacketKind.SABRE_REPLY] == census[PacketKind.SABRE_REQUEST]

    def test_every_registration_gets_one_validation(self):
        census, _bench = run_contended_microbench()
        assert census[PacketKind.SABRE_REGISTRATION] > 0
        assert (
            census[PacketKind.SABRE_VALIDATION]
            == census[PacketKind.SABRE_REGISTRATION]
        )

    def test_invariant_holds_despite_aborts(self):
        census, bench = run_contended_microbench()
        assert bench.stats.sabre_aborts > 0  # contention did happen
        assert census[PacketKind.SABRE_REPLY] == census[PacketKind.SABRE_REQUEST]

    @pytest.mark.parametrize(
        "mode",
        [SabreMode.NO_SPECULATION, SabreMode.LOCKING],
    )
    def test_invariant_for_other_variants(self, mode):
        census, _bench = run_contended_microbench(
            mode=mode, writer_think_ns=500.0
        )
        assert census[PacketKind.SABRE_REPLY] == census[PacketKind.SABRE_REQUEST]
        assert (
            census[PacketKind.SABRE_VALIDATION]
            == census[PacketKind.SABRE_REGISTRATION]
        )

    def test_plain_reads_one_reply_per_request(self):
        census, _bench = run_contended_microbench(mechanism="percl_versions")
        assert census[PacketKind.READ_REQUEST] > 0
        assert census[PacketKind.READ_REPLY] == census[PacketKind.READ_REQUEST]


class TestOrdering:
    def test_registration_precedes_data_requests(self):
        """The fabric is FIFO per direction, so the registration packet
        always reaches the R2P2 before the SABRe's data requests."""
        cluster = Cluster()
        dst, src = cluster.node(0), cluster.node(1)
        store = ObjectStore(dst.phys, RawLayout())
        store.create(1, stamped_payload(0, 500))
        handle = store.handle(1)
        arrivals = []
        original = dst._handle_packet

        def tracing(pkt):
            arrivals.append(pkt.kind)
            return original(pkt)

        cluster.fabric.attach(0, tracing)
        buf = src.alloc_buffer(handle.wire_size)

        def proc():
            yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)

        cluster.sim.process(proc())
        cluster.run()
        reg = arrivals.index(PacketKind.SABRE_REGISTRATION)
        first_req = arrivals.index(PacketKind.SABRE_REQUEST)
        assert reg < first_req

    def test_validation_is_last_reply(self):
        cluster = Cluster()
        dst, src = cluster.node(0), cluster.node(1)
        store = ObjectStore(dst.phys, RawLayout())
        store.create(1, stamped_payload(0, 500))
        handle = store.handle(1)
        arrivals = []
        original = src._handle_packet

        def tracing(pkt):
            arrivals.append(pkt.kind)
            return original(pkt)

        cluster.fabric.attach(1, tracing)
        buf = src.alloc_buffer(handle.wire_size)

        def proc():
            yield src.sabre_read(0, handle.base_addr, handle.wire_size, buf)

        cluster.sim.process(proc())
        cluster.run()
        reply_kinds = [
            k
            for k in arrivals
            if k in (PacketKind.SABRE_REPLY, PacketKind.SABRE_VALIDATION)
        ]
        assert reply_kinds[-1] is PacketKind.SABRE_VALIDATION
        assert reply_kinds.count(PacketKind.SABRE_VALIDATION) == 1

"""Unit tests for the perf-benchmark subsystem: scenario registry,
bench JSON shape, event accounting, and the regression-compare gate."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.perf import SCENARIOS, compare_benchmarks, run_scenario, scenario_names
from repro.perf.bench import BenchResult, run_suite
from repro.perf.cli import main as perf_main
from repro.perf.compare import compare_files


def _bench(scenarios):
    """Minimal BENCH dict with the given {name: events_per_s} rows."""
    return {
        "suite": "repro-perf",
        "scenarios": {
            name: {"events_per_s": value} for name, value in scenarios.items()
        },
    }


class TestCompareGate:
    def test_pass_when_equal(self):
        result = compare_benchmarks(_bench({"a": 100.0}), _bench({"a": 100.0}))
        assert result.ok
        assert not result.regressions

    def test_improvement_never_fails(self):
        result = compare_benchmarks(_bench({"a": 300.0}), _bench({"a": 100.0}))
        assert result.ok

    def test_regression_beyond_threshold_fails(self):
        result = compare_benchmarks(_bench({"a": 84.0}), _bench({"a": 100.0}))
        assert not result.ok
        assert [d.name for d in result.regressions] == ["a"]

    def test_regression_within_threshold_passes(self):
        result = compare_benchmarks(_bench({"a": 86.0}), _bench({"a": 100.0}))
        assert result.ok

    def test_threshold_is_configurable(self):
        current, base = _bench({"a": 70.0}), _bench({"a": 100.0})
        assert not compare_benchmarks(current, base, threshold=0.15).ok
        assert compare_benchmarks(current, base, threshold=0.5).ok

    def test_new_scenario_without_baseline_never_fails(self):
        result = compare_benchmarks(
            _bench({"a": 100.0, "new": 5.0}), _bench({"a": 100.0})
        )
        assert result.ok

    def test_scenario_missing_from_current_fails(self):
        # A benchmark that silently stops running is indistinguishable
        # from a 100% regression; for a long time this passed.
        result = compare_benchmarks(_bench({}), _bench({"gone": 100.0}))
        assert not result.ok
        assert [d.name for d in result.vanished] == ["gone"]
        assert not result.regressions
        report = result.report()
        assert "VANISHED" in report and "FAIL" in report

    def test_vanished_scenario_warn_only_lane_still_passes(self, tmp_path):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        cur.write_text(json.dumps(_bench({})))
        base.write_text(json.dumps(_bench({"gone": 100.0})))
        # Enforced lane (main) fails; --warn-only lane (PRs) exits 0.
        assert perf_main(["compare", str(cur), str(base)]) == 1
        assert perf_main(["compare", str(cur), str(base), "--warn-only"]) == 0

    def test_zero_baseline_has_no_ratio_and_passes(self):
        result = compare_benchmarks(_bench({"a": 50.0}), _bench({"a": 0.0}))
        delta = result.deltas[0]
        assert delta.ratio is None  # no ZeroDivisionError, no verdict
        assert not delta.vanished
        assert result.ok
        assert "no-baseline" in result.report()

    def test_bad_threshold_rejected(self):
        with pytest.raises(ConfigError):
            compare_benchmarks(_bench({}), _bench({}), threshold=1.5)

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigError):
            compare_benchmarks({"nope": 1}, _bench({}))

    def test_report_mentions_verdict(self):
        bad = compare_benchmarks(_bench({"a": 10.0}), _bench({"a": 100.0}))
        assert "REGRESSION" in bad.report()
        assert "FAIL" in bad.report()
        good = compare_benchmarks(_bench({"a": 100.0}), _bench({"a": 100.0}))
        assert "PASS" in good.report()


class TestBenchHarness:
    def test_registered_scenarios(self):
        assert set(scenario_names()) == {
            "ycsb_latency",
            "txn_mix",
            "failover_availability",
            "gray_availability",
            "atomicity_fuzz",
            "elastic_scaling",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario("no_such_scenario")

    def test_scenario_timing_accounts_events(self):
        # A stub scenario that runs a real (tiny) simulator so the
        # tracked-event accounting has something to count.
        def stub(scale):
            from repro.sim.engine import Simulator

            sim = Simulator()
            for i in range(25):
                sim.call_later(float(i), lambda: None)
            sim.run()
            return {"ops": 5, "sim_ns": 24.0}

        timing = run_scenario("stub", fn=stub, repeats=2)
        assert timing.events_scheduled == 25
        assert timing.events_fired == 25
        assert timing.ops == 5
        assert timing.sim_ns == 24.0
        assert timing.wall_s > 0
        assert timing.events_per_s > 0

    def test_bench_json_shape_and_roundtrip(self, tmp_path):
        def stub(scale):
            from repro.sim.engine import Simulator

            sim = Simulator()
            sim.call_later(1.0, lambda: None)
            sim.run()
            return {"ops": 1, "sim_ns": 1.0}

        timing = run_scenario("stub", fn=stub, repeats=1)
        result = BenchResult(
            scenarios={"stub": timing},
            scale=1.0,
            repeats=1,
            engine="calendar",
            elapsed_s=timing.wall_s,
        )
        path = tmp_path / "BENCH_perf.json"
        result.write_json(str(path))
        data = json.loads(path.read_text())
        assert data["suite"] == "repro-perf"
        assert data["engine"] == "calendar"
        row = data["scenarios"]["stub"]
        for key in (
            "wall_s",
            "events_scheduled",
            "events_fired",
            "events_per_s",
            "sim_ns",
            "sim_ns_per_s",
            "ops",
            "ops_per_s",
        ):
            assert key in row, key

    def test_compare_files_end_to_end(self, tmp_path):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        cur.write_text(json.dumps(_bench({"a": 50.0})))
        base.write_text(json.dumps(_bench({"a": 100.0})))
        assert not compare_files(str(cur), str(base)).ok

    def test_cli_compare_exit_codes(self, tmp_path, capsys):
        cur = tmp_path / "cur.json"
        base = tmp_path / "base.json"
        cur.write_text(json.dumps(_bench({"a": 50.0})))
        base.write_text(json.dumps(_bench({"a": 100.0})))
        assert perf_main(["compare", str(cur), str(base)]) == 1
        assert (
            perf_main(["compare", str(cur), str(base), "--warn-only"]) == 0
        )
        cur.write_text(json.dumps(_bench({"a": 100.0})))
        assert perf_main(["compare", str(cur), str(base)]) == 0
        capsys.readouterr()

    def test_cli_list(self, capsys):
        assert perf_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out


@pytest.mark.smoke
class TestScenarioSmoke:
    """Every registered scenario runs end-to-end at a tiny scale and
    reports sane counters (this is also what the CI perf-smoke job
    exercises at a larger scale)."""

    def test_suite_runs_and_writes_artifact(self, tmp_path):
        result = run_suite(
            names=["atomicity_fuzz"], scale=0.05, repeats=1
        )
        assert result.scenarios["atomicity_fuzz"].events_scheduled > 1000
        assert result.scenarios["atomicity_fuzz"].ops == 3  # rounds
        path = tmp_path / "bench.json"
        result.write_json(str(path))
        assert json.loads(path.read_text())["scenarios"]["atomicity_fuzz"]

    def test_reference_speedup_embedding(self, tmp_path):
        first = run_suite(names=["txn_mix"], scale=0.05, repeats=1)
        ref = tmp_path / "ref.json"
        first.write_json(str(ref))
        second = run_suite(
            names=["txn_mix"], scale=0.05, repeats=1,
            reference_path=str(ref),
        )
        speedup = second.reference["speedup"]["txn_mix"]
        assert 0.1 < speedup["events_per_s"] < 10.0

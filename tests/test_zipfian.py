"""Tests for the Zipfian access-pattern generator and skewed runs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.generators import ZipfianPicker
from repro.workloads.microbench import MicrobenchConfig, run_microbench


class TestZipfianPicker:
    def test_skew_concentrates_on_head(self):
        picker = ZipfianPicker(range(100), seed=1, theta=0.99)
        counts = {}
        for _ in range(5000):
            obj = picker.pick()
            counts[obj] = counts.get(obj, 0) + 1
        head = sum(counts.get(i, 0) for i in range(10))
        assert head / 5000 > 0.4  # top 10 % of keys draw >40 % of traffic

    def test_hot_fraction_monotone(self):
        picker = ZipfianPicker(range(100), seed=1)
        assert picker.hot_fraction(0) == 0.0
        assert picker.hot_fraction(1) < picker.hot_fraction(10)
        assert picker.hot_fraction(100) == pytest.approx(1.0)
        assert picker.hot_fraction(500) == pytest.approx(1.0)

    def test_deterministic(self):
        a = [ZipfianPicker(range(50), seed=7).pick() for _ in range(30)]
        b = [ZipfianPicker(range(50), seed=7).pick() for _ in range(30)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfianPicker([], seed=1)
        with pytest.raises(ValueError):
            ZipfianPicker(range(5), seed=1, theta=0.0)
        with pytest.raises(ValueError):
            ZipfianPicker(range(5), seed=1, theta=2.5)

    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=100))
    def test_pick_always_in_range(self, n, seed):
        picker = ZipfianPicker(range(n), seed=seed)
        for _ in range(20):
            assert 0 <= picker.pick() < n

    def test_lower_theta_less_skew(self):
        steep = ZipfianPicker(range(100), seed=1, theta=1.2)
        flat = ZipfianPicker(range(100), seed=1, theta=0.3)
        assert steep.hot_fraction(5) > flat.hot_fraction(5)


class TestSkewedMicrobench:
    def test_skew_raises_conflict_rate(self):
        """Hot keys concentrate reader-writer collisions: with the same
        writer pool, Zipfian access sees more aborts per completed op
        than uniform access."""
        results = {}
        for theta in (0.0, 0.99):
            results[theta] = run_microbench(
                MicrobenchConfig(
                    mechanism="sabre",
                    object_size=1024,
                    n_objects=100,
                    readers=8,
                    writers=8,
                    zipf_theta=theta,
                    duration_ns=80_000.0,
                    warmup_ns=10_000.0,
                    seed=31,
                )
            )
        uniform, skewed = results[0.0], results[0.99]
        rate_uniform = uniform.sabre_aborts / max(uniform.ops_completed, 1)
        rate_skewed = skewed.sabre_aborts / max(skewed.ops_completed, 1)
        assert rate_skewed > rate_uniform
        assert skewed.undetected_violations == 0

    def test_skewed_sabres_still_safe_and_live(self):
        result = run_microbench(
            MicrobenchConfig(
                mechanism="sabre",
                object_size=512,
                n_objects=20,
                readers=4,
                writers=4,
                zipf_theta=1.1,
                duration_ns=60_000.0,
                warmup_ns=8_000.0,
                seed=32,
            )
        )
        assert result.ops_completed > 0
        assert result.undetected_violations == 0

"""Cross-protocol invariants: for one ``(seed, workload)`` every read
mechanism must agree with the committed ground truth; placement must
be byte-identical run to run (and across interpreter hash seeds); and
virtual-node placement must stay load-balanced."""

import os
import subprocess
import sys

import pytest

from repro.objstore.layout import stamped_payload
from repro.objstore.sharded import HashRing, ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.protocols import protocol_names

DETECTING = ("sabre", "percl_versions", "checksum", "drtm_lock")


def run_schedule(
    mechanism: str, with_writers: bool, seed: int = 9, rmw: bool = True
):
    """A fixed transaction schedule against one mechanism; returns the
    consumed read-set entries of every committed *and* aborted attempt
    plus the service handle."""
    kv = ShardedKV(
        ShardedConfig(
            n_shards=2,
            replication=2,
            mechanism=mechanism,
            object_size=256,
            n_objects=16,
            seed=seed,
        )
    )
    manager = TxnManager(kv)
    sim = kv.cluster.sim
    t_end = 60_000.0
    session = manager.session(0)
    entries = []

    def txns():
        while sim.now < t_end:
            for start in (0, 4, 8):
                keys = [kv.key_name(start + j) for j in range(4)]
                writes = keys[:2] if rmw else []
                outcome = yield from session.run(keys, writes, t_end)
                entries.extend(outcome.reads.values())

    def writer():
        while sim.now < t_end:
            for idx in range(0, 16, 3):
                yield kv.put(1, kv.key_name(idx))
                yield sim.timeout(120.0)

    sim.process(txns())
    if with_writers:
        sim.process(writer())
    sim.run()
    return entries, kv, manager


class TestGroundTruthValues:
    @pytest.mark.parametrize("mechanism", DETECTING)
    def test_consumed_values_match_committed_ground_truth(self, mechanism):
        """Under racing writers, every payload a detecting protocol
        consumes is a committed image: its words all carry the version
        the protocol observed."""
        entries, _kv, manager = run_schedule(mechanism, with_writers=True)
        assert entries
        for entry in entries:
            assert entry.data == stamped_payload(entry.version, len(entry.data))
        assert manager.merged_stats().torn_reads_observed == 0

    def test_quiescent_store_all_protocols_agree_byte_identically(self):
        """With no writers there is a single committed ground truth and
        all five mechanisms must read exactly it."""
        snapshots = {}
        for mechanism in protocol_names():
            entries, kv, _manager = run_schedule(
                mechanism, with_writers=False, rmw=False
            )
            assert entries
            for entry in entries:
                assert entry.version == 0
                assert entry.data == stamped_payload(0, kv.cfg.payload_len)
            snapshots[mechanism] = sorted(
                (e.key, e.version, e.data) for e in entries
            )
        baseline = snapshots[protocol_names()[0]]
        for mechanism, snapshot in snapshots.items():
            assert set(snapshot) == set(baseline), mechanism


class TestPlacementDeterminism:
    @staticmethod
    def _ring_bytes(seed: int, shards: int = 4, vnodes: int = 64) -> bytes:
        ring = HashRing(range(shards), vnodes=vnodes, seed=seed)
        return b"".join(
            h.to_bytes(8, "little")
            + s.to_bytes(2, "little")
            + v.to_bytes(2, "little")
            for h, s, v in ring._points
        )

    def test_ring_byte_identical_within_process(self):
        assert self._ring_bytes(5) == self._ring_bytes(5)
        assert self._ring_bytes(5) != self._ring_bytes(6)

    def test_ring_byte_identical_across_hash_seeds(self):
        """Placement must not depend on interpreter state: a fresh
        process with a different PYTHONHASHSEED produces the identical
        ring bytes."""
        script = (
            "from repro.objstore.sharded import HashRing;"
            "ring = HashRing(range(4), vnodes=64, seed=5);"
            "import sys;"
            "blob = b''.join(h.to_bytes(8, 'little') + s.to_bytes(2, 'little')"
            " + v.to_bytes(2, 'little') for h, s, v in ring._points);"
            "sys.stdout.write(blob.hex())"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src_dir)
        blob = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert bytes.fromhex(blob) == self._ring_bytes(5)

    def test_sharded_placement_identical_across_builds(self):
        cfg = dict(n_shards=4, replication=2, n_objects=64, seed=21)
        a = ShardedKV(ShardedConfig(**cfg))
        b = ShardedKV(ShardedConfig(**cfg))
        assert [a.replicas_of(k) for k in a.keys()] == [
            b.replicas_of(k) for k in b.keys()
        ]


class TestVnodeBalance:
    @pytest.mark.parametrize("seed", (1, 7, 11, 42))
    def test_64_vnodes_bound_shard_imbalance(self, seed):
        """With 64 virtual nodes per shard, the heaviest shard owns at
        most twice the keys of the lightest (the classic consistent-
        hashing variance bound this vnode count buys)."""
        ring = HashRing(range(4), vnodes=64, seed=seed)
        counts = {shard: 0 for shard in range(4)}
        for i in range(4096):
            counts[ring.primary(f"key-{i}")] += 1
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) / min(counts.values()) <= 2.0

    def test_single_vnode_is_visibly_worse(self):
        """Sanity check that the bound is earned by the vnodes: with
        one point per shard the imbalance blows well past it."""
        worst = 0.0
        for seed in (1, 7, 11, 42):
            ring = HashRing(range(4), vnodes=1, seed=seed)
            counts = {shard: 0 for shard in range(4)}
            for i in range(4096):
                counts[ring.primary(f"key-{i}")] += 1
            lightest = max(min(counts.values()), 1)
            worst = max(worst, max(counts.values()) / lightest)
        assert worst > 2.0

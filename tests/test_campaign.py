"""Campaign orchestration tests: executor parity, the crash-resumable
journal, QA scoring, the HTML report, and the ``repro-campaign`` CLI.

The acceptance bar for the whole layer is byte-identical row artifacts
across serial, pooled, multi-host, and kill-then-resume executions of
the same campaign — pinned here at test scale and by the CI campaign
smoke job at the CLI level (with a real SIGKILL).
"""

import importlib.util
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.common.errors import ConfigError
from repro.experiments import (
    CampaignContext,
    CampaignRunner,
    CampaignSpec,
    CampaignStage,
    ExperimentSpec,
    MemoryContext,
    PointCache,
    PoolExecutor,
    QaCheck,
    SerialExecutor,
    SubprocessExecutor,
    SweepRunner,
    Variant,
    make_executor,
    point_key,
)
from repro.experiments import campaign_cli, qa
from repro.experiments.campaign import campaign_status, load_campaign
from repro.experiments.executors import resolve_spec
from repro.experiments.runner import merge_rows
from repro.experiments.worker import serve as worker_serve
from repro.harness.htmlreport import render_campaign

REPO_ROOT = Path(__file__).resolve().parents[1]
TESTS_DIR = Path(__file__).resolve().parent


def _mix_point(ctx):
    # Deterministic function of params + the per-point seed, plus one
    # draw from the global RNG to prove per-point seeding holds under
    # every executor.
    import random

    noise = random.random()
    return {
        f"{ctx.variant}_value": ctx.params["x"] * ctx.params["factor"],
        f"{ctx.variant}_noise": round(noise + ctx.seed % 7, 6),
    }


MIX_SPEC = ExperimentSpec(
    name="campaign_mix",
    description="toy spec for campaign tests",
    axes={"x": (1, 2, 3)},
    variants=(Variant("a", {"factor": 10}), Variant("b", {"factor": 100})),
    headers=("x", "a_value", "b_value", "a_noise", "b_noise"),
    point_fn=_mix_point,
)

#: module:attr reference workers can re-resolve (tests dir on PYTHONPATH).
MIX_REF = "test_campaign:MIX_SPEC"

_WORKER_ENV = {
    "PYTHONPATH": os.pathsep.join([str(REPO_ROOT / "src"), str(TESTS_DIR)])
}


def _mix_campaign(**stage_kwargs):
    return CampaignSpec(
        name="toy",
        scale=0.5,
        stages=[CampaignStage(MIX_REF, name="mix", **stage_kwargs)],
    )


class TestExecutors:
    def test_serial_pool_and_workers_byte_identical(self):
        serial = SweepRunner(MIX_SPEC, executor=SerialExecutor()).run()
        pool = SweepRunner(MIX_SPEC, executor=PoolExecutor(3)).run()
        sub = SweepRunner(
            MIX_SPEC,
            executor=SubprocessExecutor(workers=2, ref=MIX_REF, env=_WORKER_ENV),
        ).run()
        assert repr(serial.rows) == repr(pool.rows) == repr(sub.rows)

    def test_subprocess_executor_value_fidelity(self):
        # Tuples and int-vs-float must survive the wire exactly.
        spec = ExperimentSpec(
            name="campaign_types",
            axes={"x": (1,)},
            point_fn=lambda ctx: {"t": (1, 2), "i": 3, "f": 3.0},
        )
        sub = SweepRunner(
            spec,
            executor=SubprocessExecutor(
                workers=1, ref="test_campaign:_TYPES_SPEC", env=_WORKER_ENV
            ),
        ).run()
        row = sub.rows[0]
        assert row["t"] == (1, 2) and isinstance(row["t"], tuple)
        assert isinstance(row["i"], int) and isinstance(row["f"], float)

    def test_dead_worker_surfaces_as_config_error(self):
        executor = SubprocessExecutor(
            workers=1,
            command="{python} -c 'import sys; sys.exit(3)'",
            ref=MIX_REF,
            env=_WORKER_ENV,
        )
        with pytest.raises(ConfigError):
            SweepRunner(MIX_SPEC, executor=executor).run()

    def test_make_executor_factory(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("serial", jobs=4), PoolExecutor)
        assert isinstance(make_executor("pool", jobs=2), PoolExecutor)
        assert isinstance(make_executor("workers", workers=3), SubprocessExecutor)
        with pytest.raises(ConfigError):
            make_executor("queue")
        with pytest.raises(ConfigError):
            make_executor("serial", jobs=0)
        with pytest.raises(ConfigError):
            make_executor("workers", workers=0)

    def test_resolve_spec_registry_and_module(self):
        assert resolve_spec(MIX_REF) is MIX_SPEC
        assert resolve_spec("fig10").name == "fig10"
        with pytest.raises(ConfigError):
            resolve_spec("not_an_experiment")


_TYPES_SPEC = ExperimentSpec(
    name="campaign_types",
    axes={"x": (1,)},
    point_fn=lambda ctx: {"t": (1, 2), "i": 3, "f": 3.0},
)


class TestWorkerProtocol:
    def test_serve_round_trip(self):
        import base64
        import io
        import pickle

        points = MIX_SPEC.expand()
        payload = pickle.dumps(
            {"ref": MIX_REF, "scale": 0.5, "points": points[:2]}
        )
        out = io.StringIO()
        assert worker_serve(io.BytesIO(payload), out) == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [msg["index"] for msg in lines] == [0, 1]
        fragment = pickle.loads(base64.b64decode(lines[0]["data"]))
        assert fragment["a_value"] == 10

    def test_serve_relays_errors(self):
        import io
        import pickle

        payload = pickle.dumps({"ref": "nope_not_registered", "scale": 1.0, "points": []})
        out = io.StringIO()
        assert worker_serve(io.BytesIO(payload), out) == 1
        msg = json.loads(out.getvalue())
        assert "error" in msg


class TestJournal:
    def test_kill_then_resume_serves_exactly_journaled_points(self, tmp_path):
        # Uninterrupted reference run.
        ref_dir = tmp_path / "ref"
        CampaignRunner(
            _mix_campaign(), context=CampaignContext(str(ref_dir))
        ).run()

        # "Killed" run: the executor dies after 2 fragments; the
        # journal must hold exactly those 2 points.
        class DieAfter(SerialExecutor):
            def __init__(self, n):
                self.n = n

            def run(self, spec, points, scale):
                for i, item in enumerate(super().run(spec, points, scale)):
                    if i == self.n:
                        raise RuntimeError("simulated SIGKILL")
                    yield item

        crash_dir = tmp_path / "crash"
        with pytest.raises(RuntimeError):
            CampaignRunner(
                _mix_campaign(),
                executor=DieAfter(2),
                context=CampaignContext(str(crash_dir)),
            ).run()
        journal_lines = (crash_dir / "journal.jsonl").read_text().splitlines()
        assert len(journal_lines) == 2

        # Resume: only the 4 unfinished points execute.
        context = CampaignContext(str(crash_dir))
        result = CampaignRunner(_mix_campaign(), context=context).run()
        assert result.stages[0].journal_hits == 2
        assert result.stages[0].result.points_cached == 2
        assert (crash_dir / "artifacts" / "mix.rows.json").read_bytes() == (
            ref_dir / "artifacts" / "mix.rows.json"
        ).read_bytes()

    def test_corrupt_journal_lines_recompute_not_crash(self, tmp_path):
        from repro.experiments import execute_point

        root = tmp_path / "c"
        context = CampaignContext(str(root))
        points = MIX_SPEC.expand()
        good_key = point_key(MIX_SPEC.name, points[0], 0.5)
        good_fragment = execute_point(MIX_SPEC, points[0], 0.5)
        context.record(good_key, good_fragment, stage="mix")
        context.close()
        with open(root / "journal.jsonl", "a") as fh:
            fh.write("{\"stage\": \"mix\", \"key\": \"abc\", \"frag")  # truncated
            fh.write("\n")
            fh.write("total garbage\n")
            fh.write(json.dumps({"key": "k2", "fragment": 42}) + "\n")  # non-dict
            fh.write(json.dumps({"fragment": {"x": 1}}) + "\n")  # no key

        reopened = CampaignContext(str(root))
        assert reopened.journal_lines_skipped == 4
        assert reopened.get(good_key) == good_fragment

        # A campaign over the damaged journal completes with correct rows.
        result = CampaignRunner(_mix_campaign(), context=reopened).run()
        clean = CampaignRunner(_mix_campaign(), context=MemoryContext()).run()
        assert repr(result.stages[0].result.rows) == repr(clean.stages[0].result.rows)
        assert result.stages[0].journal_hits == 1

    def test_point_cache_corruption_recomputes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = SweepRunner(MIX_SPEC, cache_dir=str(cache_dir)).run()
        entries = sorted(cache_dir.glob("*.json"))
        assert entries
        entries[0].write_text('{"truncated": ')  # invalid JSON
        entries[1].write_text("17")  # valid JSON, not a fragment dict
        again = SweepRunner(MIX_SPEC, cache_dir=str(cache_dir)).run()
        assert repr(first.rows) == repr(again.rows)
        assert again.points_cached == len(entries) - 2

    def test_unserializable_fragment_skips_journal(self, tmp_path):
        spec = ExperimentSpec(
            name="campaign_unjson",
            axes={"x": (1,)},
            point_fn=lambda ctx: {"obj": object()},
        )
        context = CampaignContext(str(tmp_path / "u"))
        result = SweepRunner(spec, context=context).run()
        assert result.rows[0]["x"] == 1
        context.close()
        reopened = CampaignContext(str(tmp_path / "u"))
        assert not reopened.completed_keys()  # recomputes next time


class TestMergeAndArtifacts:
    def test_empty_fragment_is_not_missing(self):
        points = MIX_SPEC.expand(axes={"x": (1,)})
        rows_none = merge_rows(MIX_SPEC, points, [None, None])
        rows_empty = merge_rows(MIX_SPEC, points, [{}, {}])
        assert rows_none == rows_empty == [{"x": 1}]
        # And an empty fragment journals/serves as a completed point.
        spec = ExperimentSpec(
            name="campaign_empty",
            axes={"x": (1, 2)},
            point_fn=lambda ctx: {},
        )
        context = MemoryContext()
        SweepRunner(spec, context=context).run()
        second = SweepRunner(spec, context=context).run()
        assert second.points_cached == 2

    def test_write_json_is_atomic(self, tmp_path):
        path = tmp_path / "out.json"
        result = SweepRunner(MIX_SPEC).run()
        result.write_json(str(path))
        original = path.read_bytes()
        json.loads(original)
        assert not (tmp_path / "out.json.tmp").exists()

        # A failed re-write (unserializable row) must leave the
        # original artifact untouched, not truncated.
        bad = SweepRunner(MIX_SPEC).run()
        bad.rows[0]["poison"] = object()
        with pytest.raises(TypeError):
            bad.write_json(str(path))
        assert path.read_bytes() == original


class TestQa:
    def test_bounds_and_aggregates(self):
        rows = [{"v": 1.0}, {"v": 3.0}]
        report = qa.evaluate(
            "s",
            [
                QaCheck("v", agg="max", hi=3.0),
                QaCheck("v", agg="min", lo=2.0),
                QaCheck("v", agg="mean", lo=0.0, hi=2.0),
                QaCheck("v", agg="sum", hi=10.0),
            ],
            rows,
        )
        assert [o.passed for o in report.outcomes] == [True, False, True, True]
        assert report.verdict == "fail"

    def test_missing_and_non_numeric_columns_fail_loud(self):
        report = qa.evaluate(
            "s",
            [QaCheck("absent", hi=0), QaCheck("label", hi=0)],
            [{"label": "abc"}],
        )
        assert all(not o.passed for o in report.outcomes)
        assert all(o.reason for o in report.outcomes)

    @pytest.mark.parametrize("agg", ["min", "max", "mean", "sum", "first", "last"])
    @pytest.mark.parametrize("poison", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_rows_fail_loud_for_every_agg(self, agg, poison):
        # Before the explicit isfinite guard, NaN rows resolved bound
        # checks by IEEE-comparison accident: min/max over NaN are
        # order-dependent in Python, and `NaN <= hi` is simply False.
        # Bounds chosen so finite rows alone would pass every agg.
        rows = [{"v": 1.0}, {"v": poison}, {"v": 2.0}]
        report = qa.evaluate("s", [QaCheck("v", agg=agg, lo=0.0, hi=10.0)], rows)
        outcome = report.outcomes[0]
        assert not outcome.passed
        assert "non-finite" in outcome.reason
        assert report.verdict == "fail"

    def test_nan_order_does_not_matter(self):
        # The historical accident: [nan, 1.0] vs [1.0, nan] gave
        # different min() results. Both orders must now fail the same.
        for rows in ([{"v": float("nan")}, {"v": 1.0}],
                     [{"v": 1.0}, {"v": float("nan")}]):
            report = qa.evaluate("s", [QaCheck("v", agg="min", lo=0.0)], rows)
            assert not report.outcomes[0].passed
            assert "non-finite" in report.outcomes[0].reason

    def test_finite_rows_overflowing_sum_fail_loud(self):
        big = 1e308
        rows = [{"v": big}, {"v": big}]  # finite inputs, inf sum
        report = qa.evaluate("s", [QaCheck("v", agg="sum", lo=0.0)], rows)
        outcome = report.outcomes[0]
        assert not outcome.passed
        assert "non-finite" in outcome.reason

    def test_check_validation(self):
        with pytest.raises(ConfigError):
            QaCheck("v")  # no bounds
        with pytest.raises(ConfigError):
            QaCheck("v", agg="median", hi=1)

    def test_spec_and_stage_checks_compose(self, tmp_path):
        spec = ExperimentSpec(
            name="campaign_qa",
            axes={"x": (1, 2)},
            point_fn=lambda ctx: {"v": ctx.params["x"]},
            qa_checks=(QaCheck("v", agg="min", lo=0.0),),
        )
        campaign = CampaignSpec(
            name="qa",
            stages=[
                CampaignStage(
                    "test_campaign:_QA_SPEC",
                    name="s",
                    qa=(QaCheck("v", agg="max", hi=1.0),),
                )
            ],
        )
        result = CampaignRunner(
            campaign, context=CampaignContext(str(tmp_path / "q"))
        ).run()
        report = result.stages[0].qa
        assert len(report.outcomes) == 2
        assert report.outcomes[0].passed  # spec check
        assert not report.outcomes[1].passed  # stage check (max v == 2)
        assert result.verdict == "fail"
        qa_payload = json.loads(
            (tmp_path / "q" / "artifacts" / "s.qa.json").read_text()
        )
        assert qa_payload["verdict"] == "fail"


_QA_SPEC = ExperimentSpec(
    name="campaign_qa",
    axes={"x": (1, 2)},
    point_fn=lambda ctx: {"v": ctx.params["x"]},
    qa_checks=(QaCheck("v", agg="min", lo=0.0),),
)


class TestCampaignSpec:
    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ConfigError):
            CampaignSpec(
                name="dup",
                stages=[CampaignStage("fig10"), CampaignStage("fig10")],
            )

    def test_round_trip_through_dict(self):
        campaign = _mix_campaign(
            axes={"x": (1, 2)},
            overrides={"factor": 5},
            base_seed=9,
            scale=0.25,
            qa=(QaCheck("a_value", hi=100),),
        )
        clone = CampaignSpec.from_dict(campaign.to_dict())
        assert clone.to_dict() == campaign.to_dict()

    def test_load_campaign_json_and_errors(self, tmp_path):
        path = tmp_path / "req.json"
        path.write_text(
            json.dumps(
                {"campaign": "j", "stages": [{"experiment": "fig10"}]}
            )
        )
        campaign = load_campaign(str(path))
        assert campaign.name == "j"
        assert campaign.stages[0].name == "fig10"
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError):
            load_campaign(str(bad))
        with pytest.raises(ConfigError):
            load_campaign(str(tmp_path / "missing.json"))

    def test_status_counts_points(self, tmp_path):
        context = CampaignContext(str(tmp_path / "s"))
        campaign = _mix_campaign()
        assert campaign_status(campaign, context) == [("mix", 0, 6)]
        CampaignRunner(campaign, context=context).run()
        context2 = CampaignContext(str(tmp_path / "s"))
        assert campaign_status(campaign, context2) == [("mix", 6, 6)]


class TestReport:
    def _check_links(self, root: str) -> int:
        spec = importlib.util.spec_from_file_location(
            "check_links", REPO_ROOT / "tools" / "check_links.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.main([root])

    def test_report_renders_tables_qa_and_svg(self, tmp_path):
        root = tmp_path / "rep"
        context = CampaignContext(str(root))
        CampaignRunner(
            _mix_campaign(qa=(QaCheck("a_value", agg="max", hi=1000),)),
            context=context,
        ).run()
        page = Path(render_campaign(CampaignContext(str(root))))
        html = page.read_text()
        assert "campaign toy" in html
        assert 'id="mix"' in html
        assert "verdict-pass" in html
        assert "<table>" in html
        assert "<svg" in html  # 3 rows of numeric columns -> a figure
        assert "mix.rows.json" in html
        # Zero broken links in the rendered page (CI reuses this tool).
        assert self._check_links(str(root)) == 0

    def test_broken_report_link_detected(self, tmp_path):
        root = tmp_path / "rep2"
        context = CampaignContext(str(root))
        CampaignRunner(_mix_campaign(), context=context).run()
        page = Path(render_campaign(CampaignContext(str(root))))
        page.write_text(
            page.read_text().replace("mix.rows.json", "gone.rows.json")
        )
        assert self._check_links(str(root)) == 1


class TestCampaignCli:
    def _request(self, tmp_path) -> str:
        path = tmp_path / "req.json"
        path.write_text(
            json.dumps(
                {
                    "campaign": "cli",
                    "scale": 0.5,
                    "stages": [
                        {
                            "experiment": MIX_REF,
                            "name": "mix",
                            "qa": [{"column": "a_value", "agg": "max", "hi": 1e9}],
                        }
                    ],
                }
            )
        )
        return str(path)

    def test_run_status_report(self, tmp_path, capsys):
        request = self._request(tmp_path)
        root = str(tmp_path / "camp")
        assert campaign_cli.main(["run", request, "--dir", root]) == 0
        out = capsys.readouterr().out
        assert "verdict PASS" in out
        assert campaign_cli.main(["status", root]) == 0
        assert "6/6 points" in capsys.readouterr().out
        assert campaign_cli.main(["report", root]) == 0
        assert os.path.exists(os.path.join(root, "report", "index.html"))

    def test_resume_after_interrupt(self, tmp_path, capsys):
        request = self._request(tmp_path)
        root = str(tmp_path / "camp")
        assert campaign_cli.main(["run", request, "--dir", root]) == 0
        capsys.readouterr()
        # Re-running via resume serves every point from the journal.
        assert campaign_cli.main(["resume", root]) == 0
        out = capsys.readouterr().out
        assert "6/6 from journal" in out

    def test_qa_gate_exit_code(self, tmp_path, capsys):
        path = tmp_path / "req.json"
        path.write_text(
            json.dumps(
                {
                    "campaign": "gate",
                    "stages": [
                        {
                            "experiment": MIX_REF,
                            "name": "mix",
                            "qa": [{"column": "a_value", "agg": "max", "hi": -1}],
                        }
                    ],
                }
            )
        )
        root = str(tmp_path / "camp")
        assert campaign_cli.main(["run", str(path), "--dir", root]) == 0
        assert (
            campaign_cli.main(["resume", root, "--qa-gate"]) == 3
        )
        assert campaign_cli.main(["status", str(tmp_path / "nope")]) == 2

    @pytest.mark.smoke
    def test_sigkill_then_resume_byte_identical(self, tmp_path):
        """The real thing: SIGKILL a campaign subprocess mid-run, then
        resume and byte-compare against an uninterrupted run."""
        request = tmp_path / "req.json"
        request.write_text(
            json.dumps(
                {
                    "campaign": "kill",
                    "scale": 0.05,
                    "stages": [{"experiment": "fig10", "name": "fig10"}],
                }
            )
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        ref_dir = tmp_path / "ref"
        subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments.campaign_cli",
                "run",
                str(request),
                "--dir",
                str(ref_dir),
            ],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
        )

        kill_dir = tmp_path / "killed"
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.campaign_cli",
                "run",
                str(request),
                "--dir",
                str(kill_dir),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )
        journal = kill_dir / "journal.jsonl"
        deadline = time.time() + 120
        while time.time() < deadline:
            if journal.exists() and len(journal.read_text().splitlines()) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait()

        journaled = len(journal.read_text().splitlines())
        assert journaled >= 2

        from repro.experiments.campaign import load_campaign_dir

        campaign, context = load_campaign_dir(str(kill_dir))
        result = CampaignRunner(campaign, context=context).run()
        # Resume served exactly the journaled prefix, no more.
        assert result.stages[0].journal_hits == journaled
        assert (kill_dir / "artifacts" / "fig10.rows.json").read_bytes() == (
            ref_dir / "artifacts" / "fig10.rows.json"
        ).read_bytes()

"""Tests for the YCSB workload suite and its registered experiments."""

import pytest

from repro.common.errors import ConfigError
from repro.experiments import SweepRunner, registry
from repro.harness.cli import main
from repro.objstore.sharded import HashRing
from repro.workloads.ycsb import (
    YCSB_MIXES,
    YCSB_SHARD_SCALING_SPEC,
    YcsbConfig,
    run_ycsb,
)


def tiny_cfg(**kw):
    defaults = dict(
        workload="B",
        distribution="uniform",
        n_shards=2,
        n_objects=64,
        readers_per_client=1,
        duration_ns=40_000.0,
        warmup_ns=8_000.0,
        seed=3,
    )
    defaults.update(kw)
    return YcsbConfig(**defaults)


class TestConfig:
    def test_mixes_match_ycsb_core(self):
        assert YCSB_MIXES == {"A": 0.5, "B": 0.05, "C": 0.0}

    def test_validation(self):
        with pytest.raises(ConfigError):
            tiny_cfg(workload="Z").validate()
        with pytest.raises(ConfigError):
            tiny_cfg(distribution="gaussian").validate()
        with pytest.raises(ConfigError):
            tiny_cfg(readers_per_client=0).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(warmup_ns=50_000.0).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(mechanism="bogus").validate()
        with pytest.raises(ConfigError):
            tiny_cfg(distribution="zipfian", zipf_theta=2.0).validate()
        with pytest.raises(ConfigError):
            tiny_cfg(warmup_ns=-1.0).validate()

    def test_write_fraction(self):
        assert tiny_cfg(workload="A").write_fraction == 0.5
        assert tiny_cfg(workload="C").write_fraction == 0.0


class TestWorkloads:
    def test_workload_c_is_read_only(self):
        result = run_ycsb(tiny_cfg(workload="C"))
        assert result.writes_completed == 0
        assert len(result.write_latency) == 0
        assert result.reads_completed > 0

    def test_workload_a_mixes_reads_and_writes(self):
        result = run_ycsb(tiny_cfg(workload="A"))
        assert result.writes_completed > 0
        assert result.reads_completed > 0
        assert result.mean_write_ns > 0

    def test_zipfian_concentrates_load_on_the_hot_shard(self):
        """Zipf rank 1 is object 0; the shard owning ``key-0`` must
        receive well over its fair share of routed reads."""
        cfg = tiny_cfg(
            n_shards=4,
            n_objects=256,
            distribution="zipfian",
            zipf_theta=1.2,
            duration_ns=80_000.0,
            readers_per_client=2,
        )
        result = run_ycsb(cfg)
        ring = HashRing(range(cfg.n_shards), vnodes=cfg.vnodes, seed=cfg.seed)
        hot_shard = ring.primary("key-0")
        routed = {row["shard"]: row["reads_routed"] for row in result.shard_rows}
        total = sum(routed.values())
        assert total > 0
        assert routed[hot_shard] > total / cfg.n_shards

    def test_sabre_audit_clean_under_write_heavy_mix(self):
        result = run_ycsb(tiny_cfg(workload="A", mechanism="sabre"))
        assert result.undetected_violations == 0

    def test_percl_mechanism_runs_against_sharded_store(self):
        result = run_ycsb(tiny_cfg(mechanism="percl_versions"))
        assert result.reads_completed > 0
        assert result.undetected_violations == 0


class TestSpecs:
    def test_registered(self):
        names = registry.names()
        assert "ycsb_latency" in names
        assert "ycsb_shard_scaling" in names

    def test_scaling_parallel_sweep_byte_identical_to_serial(self):
        axes = {"shards": (1, 2)}
        serial = SweepRunner(YCSB_SHARD_SCALING_SPEC, scale=0.05, axes=axes).run()
        parallel = SweepRunner(
            YCSB_SHARD_SCALING_SPEC, scale=0.05, axes=axes, jobs=2
        ).run()
        assert repr(serial.rows) == repr(parallel.rows)

    def test_scaling_rows_shape(self):
        result = SweepRunner(
            YCSB_SHARD_SCALING_SPEC, scale=0.05, axes={"shards": (2,)}
        ).run()
        (row,) = result.rows
        assert row["shards"] == 2
        assert row["read_gbps"] > 0
        assert row["undetected_violations"] == 0

    def test_replication_clamped_to_single_shard(self):
        result = SweepRunner(
            YCSB_SHARD_SCALING_SPEC, scale=0.05, axes={"shards": (1,)}
        ).run()
        assert result.rows[0]["read_gbps"] > 0

    def test_cli_lists_ycsb_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ycsb_latency" in out
        assert "ycsb_shard_scaling" in out

"""Smoke tests: every figure/table harness runs end to end at a small
scale and reproduces the paper's qualitative claims."""

import math

import pytest

from repro.harness.cli import main, run_experiment
from repro.harness.fig1 import run_fig1
from repro.harness.fig7 import run_fig7a, run_fig7b
from repro.harness.fig8 import run_fig8
from repro.harness.fig9 import run_fig9a, run_fig9b
from repro.harness.fig10 import run_fig10
from repro.harness.report import format_table, scaled_duration
from repro.harness.tables import table1, table2_rows

SCALE = 0.25  # small measurement windows: fast but still meaningful
SIZES = (128, 1024, 4096)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(
            ["a", "bb"], [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.25}]
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "2.50" in lines[2]

    def test_missing_cells_render_empty(self):
        out = format_table(["a", "b"], [{"a": 1}])
        assert out.splitlines()[2].strip().startswith("1")

    def test_scaled_duration_floor(self):
        assert scaled_duration(100_000, 0.0001) == 30_000.0
        assert scaled_duration(100_000, 2.0) == 200_000.0


class TestTables:
    def test_table1_matches_paper(self):
        out = table1()
        assert "DrTM" in out and "SABRes" in out

    def test_table2_lists_all_components(self):
        headers, rows = table2_rows()
        components = {r["component"] for r in rows}
        assert {
            "Cores",
            "L1 Caches",
            "LLC",
            "Coherence",
            "Memory",
            "Interconnect",
            "RMC",
            "LightSABRes",
            "Network",
        } <= components
        sram = next(r for r in rows if r["component"] == "LightSABRes")
        assert "560 B SRAM" in sram["parameters"]


class TestFig1:
    def test_stripping_share_grows_with_size(self):
        headers, rows = run_fig1(scale=SCALE, sizes=SIZES)
        shares = [r["stripping_share"] for r in rows]
        assert shares == sorted(shares)
        assert shares[0] < 0.25
        assert shares[-1] > 0.35

    def test_transfer_scales_sublinearly(self):
        headers, rows = run_fig1(scale=SCALE, sizes=(128, 4096))
        ratio = rows[1]["transfer_ns"] / rows[0]["transfer_ns"]
        assert ratio < 32  # 32x the bytes in far less than 32x the time


class TestFig7:
    def test_fig7a_claims(self):
        headers, rows = run_fig7a(scale=SCALE, sizes=(64, 1024, 8192))
        single = rows[0]
        # Single-block: all three variants equal (within noise).
        assert single["sabre_ns"] == pytest.approx(
            single["remote_read_ns"], rel=0.10
        )
        assert single["sabre_no_spec_ns"] == pytest.approx(
            single["remote_read_ns"], rel=0.10
        )
        for row in rows[1:]:
            # No-speculation pays the serialized version read.
            assert row["sabre_no_spec_ns"] > row["sabre_ns"] + 40.0
            # LightSABRes stay close to raw remote reads.
            assert row["sabre_ns"] <= 1.20 * row["remote_read_ns"]

    def test_fig7b_identical_curves(self):
        headers, rows = run_fig7b(scale=SCALE, sizes=(512, 8192))
        for row in rows:
            assert row["sabre_gbps"] == pytest.approx(
                row["remote_read_gbps"], rel=0.15
            )
        # Throughput grows with object size toward the fabric limit.
        assert rows[1]["sabre_gbps"] > rows[0]["sabre_gbps"]
        assert rows[1]["sabre_gbps"] <= 100.0


class TestFig8:
    def test_sabre_always_ahead_and_gap_grows_with_size(self):
        headers, rows = run_fig8(
            scale=SCALE, sizes=(128, 8192), writer_counts=(0, 8)
        )
        by_key = {(r["object_size"], r["writers"]): r for r in rows}
        for row in rows:
            assert row["sabre_advantage"] > 0
        assert (
            by_key[(8192, 0)]["sabre_advantage"]
            > by_key[(128, 0)]["sabre_advantage"]
        )

    def test_throughput_degrades_with_writers(self):
        headers, rows = run_fig8(
            scale=SCALE, sizes=(1024,), writer_counts=(0, 16)
        )
        assert rows[1]["sabre_gbps"] < rows[0]["sabre_gbps"]
        assert rows[1]["percl_gbps"] < rows[0]["percl_gbps"]
        assert rows[1]["sabre_aborts"] > 0
        assert rows[1]["percl_conflicts"] > 0


class TestFig9:
    def test_fig9a_improvement_band(self):
        headers, rows = run_fig9a(scale=SCALE, sizes=(128, 8192))
        by = {(r["object_size"], r["build"]): r for r in rows}
        small = by[(128, "percl")]["total_ns"] / by[(128, "sabre")]["total_ns"]
        large = by[(8192, "percl")]["total_ns"] / by[(8192, "sabre")]["total_ns"]
        assert 1.15 <= small <= 1.6  # paper: 1.35
        assert 1.3 <= large <= 1.8  # paper: 1.52
        assert by[(8192, "sabre")]["stripping_ns"] == 0.0

    def test_fig9b_improvement_in_paper_band(self):
        headers, rows = run_fig9b(scale=SCALE, sizes=(1024,), readers=4)
        assert 0.15 <= rows[0]["improvement"] <= 0.9  # paper: 0.30-0.60


class TestFig10:
    def test_speedup_band(self):
        headers, rows = run_fig10(scale=SCALE, sizes=(128, 8192))
        assert 1.05 <= rows[0]["speedup"] <= 1.5  # paper: 1.2
        assert 1.6 <= rows[1]["speedup"] <= 2.6  # paper: 2.1


class TestCli:
    def test_run_experiment_table(self):
        assert "SABRes" in run_experiment("table1", scale=1.0)
        assert "DDR4" in run_experiment("table2", scale=1.0)

    def test_cli_main_runs_figure(self, capsys):
        assert main(["fig10", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "speedup" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_parse_axes_and_overrides(self):
        from repro.common.errors import ConfigError
        from repro.harness.cli import parse_axes, parse_overrides

        assert parse_axes(["object_size=64,512"]) == {"object_size": (64, 512)}
        assert parse_axes([]) is None
        assert parse_overrides(["seed=7", "mode='fast'"]) == {
            "seed": 7,
            "mode": "fast",
        }
        assert parse_overrides([]) is None
        with pytest.raises(ConfigError):
            parse_axes(["missing_equals"])
        with pytest.raises(ConfigError):
            parse_overrides(["alsobad"])

    def test_cli_axes_overrides_base_seed(self, capsys):
        assert (
            main(
                [
                    "fig10",
                    "--scale",
                    "0.2",
                    "--axes",
                    "object_size=128,512",
                    "--overrides",
                    "seed=9",
                    "--base-seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()[:1].isdigit()]
        assert len(lines) == 2  # only the two requested sizes

    def test_cli_bad_axis_exits_2(self, capsys):
        assert main(["fig10", "--axes", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_campaign_dir_resumes(self, tmp_path, capsys):
        root = str(tmp_path / "camp")
        argv = ["fig10", "--scale", "0.2", "--campaign-dir", root]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0/" in first  # nothing journaled yet
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "points cached" in second
        # Every point served from the journal on the second run.
        import re

        match = re.search(r"(\d+)/(\d+) points cached", second)
        assert match and match.group(1) == match.group(2)

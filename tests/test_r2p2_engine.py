"""Unit tests driving the R2P2 engine directly with crafted packets
(no source node, no fabric): the ATT/stream-buffer state machine in
isolation."""

import pytest

from repro.common.config import NodeConfig
from repro.common.units import CACHE_BLOCK
from repro.core.r2p2 import R2P2Engine
from repro.fabric.packets import (
    PacketKind,
    sabre_registration,
    sabre_request,
)
from repro.mem.system import ChipMemorySystem
from repro.noc.mesh import Mesh
from repro.sim.engine import Simulator


class Harness:
    """An R2P2 wired to a real chip memory system and a packet sink."""

    def __init__(self, **node_overrides):
        import dataclasses

        self.sim = Simulator()
        cfg = NodeConfig()
        if node_overrides:
            sabre = dataclasses.replace(cfg.sabre, **node_overrides)
            cfg = dataclasses.replace(cfg, sabre=sabre)
        self.cfg = cfg
        mesh = Mesh(cfg.noc)
        self.chip = ChipMemorySystem(self.sim, cfg, mesh)
        self.sent = []
        self.engine = R2P2Engine(
            self.sim,
            cfg,
            self.chip,
            node_id=0,
            index=0,
            tile=mesh.rmc_tile(0),
            send_packet=self.sent.append,
        )

    def make_object(self, version: int, blocks: int) -> int:
        base = self.chip.phys.allocate(blocks * CACHE_BLOCK)
        self.chip.phys.write_u64(base, version)
        return base

    def start_sabre(self, base: int, blocks: int, tid: int = 1) -> None:
        reg = sabre_registration(1, 0, tid, blocks)
        reg.meta.update(addr=base, size=blocks * CACHE_BLOCK, rgp=0)
        self.engine.handle_packet(reg)
        for off in range(blocks):
            req = sabre_request(1, 0, tid, off)
            req.meta["rgp"] = 0
            self.engine.handle_packet(req)

    def replies(self):
        return [p for p in self.sent if p.kind is PacketKind.SABRE_REPLY]

    def validation(self):
        vals = [p for p in self.sent if p.kind is PacketKind.SABRE_VALIDATION]
        return vals[0] if vals else None


class TestBasicLifecycle:
    def test_sabre_completes_and_frees_att(self):
        h = Harness()
        base = h.make_object(version=4, blocks=4)
        h.start_sabre(base, 4)
        assert h.engine.att.occupancy == 1
        h.sim.run()
        assert len(h.replies()) == 4
        assert h.validation().meta["success"] is True
        assert h.validation().meta["version"] == 4
        assert h.engine.att.occupancy == 0

    def test_odd_version_aborts_but_replies_everything(self):
        h = Harness()
        base = h.make_object(version=5, blocks=4)  # locked object
        h.start_sabre(base, 4)
        h.sim.run()
        assert len(h.replies()) == 4  # request-reply invariant
        assert h.validation().meta["success"] is False
        assert h.engine.counters.get("abort_locked_version") == 1

    def test_window_closes_on_version_reply(self):
        h = Harness()
        base = h.make_object(version=2, blocks=2)
        h.start_sabre(base, 2)
        entry = h.engine.att.entries()[0]
        assert entry.speculative
        h.sim.run()
        assert entry.version == 2
        assert not entry.speculative

    def test_requests_gate_issue(self):
        """issue_count never exceeds the request counter (§5.1)."""
        h = Harness()
        base = h.make_object(version=2, blocks=8)
        reg = sabre_registration(1, 0, 9, 8)
        reg.meta.update(addr=base, size=8 * CACHE_BLOCK, rgp=0)
        h.engine.handle_packet(reg)
        for off in range(3):  # only 3 of 8 requests received
            req = sabre_request(1, 0, 9, off)
            req.meta["rgp"] = 0
            h.engine.handle_packet(req)
        entry = h.engine.att.entries()[0]
        h.sim.run()
        assert entry.issue_count == 3
        assert len(h.replies()) == 3
        assert h.validation() is None  # not complete yet
        for off in range(3, 8):
            req = sabre_request(1, 0, 9, off)
            req.meta["rgp"] = 0
            h.engine.handle_packet(req)
        h.sim.run()
        assert h.validation() is not None


class TestSnoopRules:
    def test_non_base_invalidation_during_window_aborts(self):
        h = Harness()
        base = h.make_object(version=2, blocks=4)
        h.start_sabre(base, 4)
        entry = h.engine.att.entries()[0]
        # Deliver an invalidation for a tracked non-base block while the
        # version read is still outstanding.
        assert entry.speculative
        h.chip.write_block(0, base + CACHE_BLOCK)
        assert entry.aborted
        assert entry.abort_cause == "window_invalidation"
        h.sim.run()
        assert h.validation().meta["success"] is False

    def test_base_invalidation_never_aborts_directly(self):
        h = Harness()
        base = h.make_object(version=2, blocks=4)
        h.start_sabre(base, 4)
        entry = h.engine.att.entries()[0]
        h.chip.write_block(0, base)  # base block touched
        assert not entry.aborted
        assert entry.pending_validate
        h.sim.run()
        # The version word was rewritten by write_block (same value 2
        # preserved in phys because no data given): validate re-reads
        # and compares.
        assert h.engine.counters.get("validate_rereads") == 1

    def test_post_window_data_invalidation_ignored(self):
        h = Harness()
        base = h.make_object(version=2, blocks=2)
        h.start_sabre(base, 2)
        entry = h.engine.att.entries()[0]
        h.sim.run(until=200.0)  # window closed, data read
        assert not entry.speculative
        # Data-block subscriptions were dropped at window close; a
        # write there no longer reaches the entry.
        h.chip.write_block(0, base + CACHE_BLOCK)
        assert not entry.aborted

    def test_validate_mismatch_fails_sabre(self):
        h = Harness()
        base = h.make_object(version=2, blocks=16)
        h.start_sabre(base, 16)
        entry = h.engine.att.entries()[0]

        def tamper():
            if not entry.speculative and not entry.finished:
                # Post-window: bump the version (contract-abiding
                # writers always touch the base block first).
                h.chip.write_block(0, base, (3).to_bytes(8, "little"))
            else:
                h.sim.call_later(5.0, tamper)

        h.sim.call_later(5.0, tamper)
        h.sim.run()
        assert h.validation().meta["success"] is False
        assert h.engine.counters.get("validate_failures") == 1


class TestStreamBufferLimits:
    def test_window_issue_bounded_by_depth(self):
        h = Harness(stream_buffer_depth=4)
        base = h.make_object(version=2, blocks=12)
        h.start_sabre(base, 12)
        entry = h.engine.att.entries()[0]
        # Before any memory reply arrives, at most `depth` loads issued.
        h.sim.run(until=30.0)
        assert entry.issue_count <= 4
        assert h.engine.counters.get("stream_buffer_stalls") > 0
        h.sim.run()
        assert h.validation().meta["success"] is True
        assert len(h.replies()) == 12

    def test_single_entry_att_queues_second_registration(self):
        h = Harness(stream_buffers=1)
        a = h.make_object(version=2, blocks=2)
        b = h.make_object(version=2, blocks=2)
        h.start_sabre(a, 2, tid=1)
        h.start_sabre(b, 2, tid=2)
        assert h.engine.att.occupancy == 1
        assert h.engine.counters.get("att_backpressure") == 1
        h.sim.run()
        vals = [p for p in h.sent if p.kind is PacketKind.SABRE_VALIDATION]
        assert len(vals) == 2
        assert all(v.meta["success"] for v in vals)


class TestProtocolErrors:
    def test_request_before_registration_rejected(self):
        from repro.common.errors import ProtocolError

        h = Harness()
        req = sabre_request(1, 0, 99, 0)
        req.meta["rgp"] = 0
        with pytest.raises(ProtocolError):
            h.engine.handle_packet(req)

    def test_unroutable_kind_rejected(self):
        from repro.common.errors import ProtocolError
        from repro.fabric.packets import Packet

        h = Harness()
        with pytest.raises(ProtocolError):
            h.engine.handle_packet(
                Packet(PacketKind.RPC_SEND, 1, 0, 1)
            )

"""Unit tests for stream buffers (address-range snooping, §4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.core.stream_buffer import StreamBuffer


def test_assign_and_release():
    sb = StreamBuffer(depth=8)
    assert not sb.busy
    sb.assign(0x1000, 4)
    assert sb.busy
    assert sb.base_block == 0x1000
    sb.release()
    assert not sb.busy


def test_double_assign_rejected():
    sb = StreamBuffer(depth=8)
    sb.assign(0x1000, 2)
    with pytest.raises(SimulationError):
        sb.assign(0x2000, 2)


def test_bad_depth_rejected():
    with pytest.raises(SimulationError):
        StreamBuffer(depth=0)


def test_bad_total_rejected():
    sb = StreamBuffer(depth=8)
    with pytest.raises(SimulationError):
        sb.assign(0x1000, 0)


class TestSubtractor:
    def test_slot_lookup_by_arithmetic(self):
        sb = StreamBuffer(depth=8)
        sb.assign(0x1000, 4)
        assert sb.slot_of(0x1000) == 0
        assert sb.slot_of(0x1040) == 1
        assert sb.slot_of(0x10C0) == 3

    def test_outside_range_no_match(self):
        sb = StreamBuffer(depth=8)
        sb.assign(0x1000, 4)
        assert sb.slot_of(0x0FC0) is None  # below base
        assert sb.slot_of(0x1100) is None  # past the 4 tracked blocks
        assert sb.slot_of(0x1001) is None  # unaligned

    def test_tracking_limited_to_depth(self):
        """SABRes longer than the buffer only track ``depth`` blocks:
        the unroll stage stalls past that during the window (§4.1)."""
        sb = StreamBuffer(depth=4)
        sb.assign(0x1000, 100)
        assert sb.tracked_slots == 4
        assert sb.slot_of(0x1000 + 3 * 64) == 3
        assert sb.slot_of(0x1000 + 4 * 64) is None

    def test_unassigned_matches_nothing(self):
        sb = StreamBuffer(depth=4)
        assert sb.slot_of(0x1000) is None
        assert not sb.matches(0x1000)


class TestIssueTracking:
    def test_issue_and_receive(self):
        sb = StreamBuffer(depth=8)
        sb.assign(0x1000, 3)
        sb.mark_issued(0)
        sb.mark_issued(1)
        assert sb.is_issued(0) and sb.is_issued(1) and not sb.is_issued(2)
        assert sb.mark_received(0x1040)
        assert sb.is_received(1)
        assert not sb.is_received(0)

    def test_cannot_issue_past_tracked(self):
        sb = StreamBuffer(depth=2)
        sb.assign(0x1000, 8)
        assert sb.can_issue(0) and sb.can_issue(1)
        assert not sb.can_issue(2)
        with pytest.raises(SimulationError):
            sb.mark_issued(2)

    def test_receive_outside_range_ignored(self):
        sb = StreamBuffer(depth=4)
        sb.assign(0x1000, 2)
        assert not sb.mark_received(0x5000)

    def test_is_base(self):
        sb = StreamBuffer(depth=4)
        sb.assign(0x1000, 2)
        assert sb.is_base(0x1000)
        assert not sb.is_base(0x1040)


@given(
    st.integers(min_value=0, max_value=1 << 20).map(lambda v: v * 64),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_slot_arithmetic_property(base, total, depth):
    sb = StreamBuffer(depth=depth)
    sb.assign(base, total)
    tracked = min(depth, total)
    for slot in range(tracked):
        assert sb.slot_of(base + slot * 64) == slot
    assert sb.slot_of(base + tracked * 64) is None
    assert sb.slot_of(base - 64) is None

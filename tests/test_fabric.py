"""Unit tests for inter-node fabric and packets."""

import pytest

from repro.common.config import FabricConfig
from repro.common.errors import ConfigError
from repro.fabric.network import Fabric, Link
from repro.fabric.packets import (
    PacketKind,
    block_payload_size,
    read_reply,
    read_request,
    sabre_registration,
    sabre_validation,
)
from repro.sim.engine import Simulator


class TestPackets:
    def test_read_request_shape(self):
        pkt = read_request(0, 1, transfer_id=7, block_offset=3)
        assert pkt.kind is PacketKind.READ_REQUEST
        assert pkt.block_offset == 3
        assert not pkt.is_reply

    def test_reply_carries_payload(self):
        pkt = read_reply(1, 0, 7, 0, b"x" * 64)
        assert pkt.is_reply
        assert pkt.size_bytes == 64
        assert pkt.wire_bytes(header_bytes=16) == 80

    def test_registration_and_validation_meta(self):
        reg = sabre_registration(0, 1, 7, total_blocks=9)
        assert reg.meta["total_blocks"] == 9
        val = sabre_validation(1, 0, 7, success=False)
        assert val.meta["success"] is False
        assert val.size_bytes == 0

    def test_sequence_numbers_unique(self):
        a = read_request(0, 1, 1, 0)
        b = read_request(0, 1, 1, 1)
        assert a.seq != b.seq

    def test_block_payload_size_partial_tail(self):
        assert block_payload_size(130, 0) == 64
        assert block_payload_size(130, 1) == 64
        assert block_payload_size(130, 2) == 2
        assert block_payload_size(130, 3) == 0


class TestLink:
    def test_fixed_hop_latency(self):
        sim = Simulator()
        link = Link(sim, FabricConfig(), hops=1)
        arrivals = []
        pkt = sabre_validation(0, 1, 1, True)  # 0-byte payload
        link.send(pkt, lambda p: arrivals.append(sim.now))
        sim.run()
        # 16 B header at 100 GBps = 0.16 ns + 35 ns propagation.
        assert arrivals[0] == pytest.approx(35.16)

    def test_serialization_queues_packets(self):
        sim = Simulator()
        link = Link(sim, FabricConfig(), hops=1)
        arrivals = []
        for i in range(3):
            link.send(read_reply(0, 1, 1, i, b"p" * 64), lambda p: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 3
        # Each 80-byte packet serializes for 0.8 ns.
        assert arrivals[1] - arrivals[0] == pytest.approx(0.8)
        assert arrivals[2] - arrivals[1] == pytest.approx(0.8)

    def test_zero_hops_rejected(self):
        with pytest.raises(ConfigError):
            Link(Simulator(), FabricConfig(), hops=0)


class TestFabric:
    def test_two_node_delivery(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=2)
        seen = []
        fabric.attach(0, lambda p: seen.append(("n0", p.kind)))
        fabric.attach(1, lambda p: seen.append(("n1", p.kind)))
        fabric.send(read_request(0, 1, 1, 0))
        sim.run()
        assert seen == [("n1", PacketKind.READ_REQUEST)]

    def test_two_nodes_always_one_hop(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=2)
        assert fabric.link(0, 1).hops == 1
        assert fabric.link(1, 0).hops == 1

    def test_ring_distance_for_larger_racks(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=6)
        assert fabric.link(0, 3).hops == 3
        assert fabric.link(0, 5).hops == 1  # wraps around

    def test_unattached_destination_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=2)
        with pytest.raises(ConfigError):
            fabric.send(read_request(0, 1, 1, 0))

    def test_bad_node_attach_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=2)
        with pytest.raises(ConfigError):
            fabric.attach(5, lambda p: None)

    def test_packet_counting(self):
        sim = Simulator()
        fabric = Fabric(sim, FabricConfig(), nodes=2)
        fabric.attach(1, lambda p: None)
        fabric.send(read_request(0, 1, 1, 0))
        fabric.send(read_request(0, 1, 1, 1))
        assert fabric.packets_on(0, 1) == 2
        assert fabric.packets_on(1, 0) == 0

"""Tests for the Fig. 10 local-read kernel."""

import pytest

from repro.common.errors import ConfigError
from repro.objstore.local import LocalReadConfig, run_local_reads


def quick(percl, **kw):
    defaults = dict(
        percl_layout=percl,
        object_size=1024,
        readers=4,
        duration_ns=50_000.0,
        warmup_ns=8_000.0,
        seed=3,
    )
    defaults.update(kw)
    return run_local_reads(LocalReadConfig(**defaults))


def test_config_validation():
    with pytest.raises(ConfigError):
        LocalReadConfig(object_size=8).validate()
    with pytest.raises(ConfigError):
        LocalReadConfig(readers=0).validate()


def test_both_layouts_make_progress():
    for percl in (True, False):
        result = quick(percl)
        assert result.ops_completed > 20
        assert result.goodput_gbps > 0


def test_unmodified_store_is_faster():
    percl = quick(True)
    raw = quick(False)
    assert raw.goodput_gbps > percl.goodput_gbps


def test_speedup_grows_with_object_size():
    """Fig. 10: +20 % at 128 B growing to ~2.1x at 8 KB."""
    ratios = []
    for size in (128, 8192):
        percl = quick(True, object_size=size, readers=15)
        raw = quick(False, object_size=size, readers=15)
        ratios.append(raw.goodput_gbps / percl.goodput_gbps)
    assert ratios[0] < ratios[1]
    assert 1.05 <= ratios[0] <= 1.5
    assert 1.6 <= ratios[1] <= 2.6


def test_explicit_object_count_respected():
    result = quick(False, n_objects=32)
    assert result.ops_completed > 0


def test_throughput_bounded_by_dram():
    result = quick(False, object_size=8192, readers=15)
    assert result.goodput_gbps <= 102.4  # 4 x 25.6 GBps ceiling

"""Unit tests for bandwidth servers and FIFO resources."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthServer, FifoResource, MultiChannel


class TestBandwidthServer:
    def test_single_request_service_time(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=2.0)
        assert server.request(100) == pytest.approx(50.0)

    def test_back_to_back_requests_queue(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        assert server.request(10) == pytest.approx(10.0)
        assert server.request(10) == pytest.approx(20.0)

    def test_extra_latency_does_not_occupy_channel(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        assert server.request(10, extra_latency=100.0) == pytest.approx(110.0)
        # Channel frees at 10, not 110.
        assert server.request(10) == pytest.approx(20.0)

    def test_request_at_defers_start(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        assert server.request_at(40.0, 10) == pytest.approx(50.0)

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        server.request_at(90.0, 10)
        assert server.utilization(100.0) == pytest.approx(0.1)

    def test_request_event_triggers_at_completion(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        times = []

        def proc():
            yield server.request_event(25)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [25.0]

    def test_negative_size_rejected(self):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=1.0)
        with pytest.raises(SimulationError):
            server.request(-1)

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthServer(Simulator(), bytes_per_ns=0.0)

    @given(st.lists(st.integers(min_value=1, max_value=1000), max_size=30))
    def test_completions_monotonic(self, sizes):
        sim = Simulator()
        server = BandwidthServer(sim, bytes_per_ns=3.0)
        last = 0.0
        for size in sizes:
            done = server.request(size)
            assert done >= last
            last = done

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30))
    def test_total_time_at_least_bytes_over_rate(self, sizes):
        sim = Simulator()
        rate = 2.0
        server = BandwidthServer(sim, bytes_per_ns=rate)
        done = 0.0
        for size in sizes:
            done = server.request(size)
        assert done == pytest.approx(sum(sizes) / rate)


class TestMultiChannel:
    def test_interleaving_spreads_blocks(self):
        sim = Simulator()
        bank = MultiChannel(sim, 4, 1.0, interleave_bytes=64)
        channels = {bank.channel_for(64 * i).name for i in range(4)}
        assert len(channels) == 4

    def test_same_block_same_channel(self):
        sim = Simulator()
        bank = MultiChannel(sim, 4, 1.0, interleave_bytes=64)
        assert bank.channel_for(128) is bank.channel_for(129)

    def test_parallel_channels_overlap(self):
        sim = Simulator()
        bank = MultiChannel(sim, 2, 1.0, interleave_bytes=64)
        done_a = bank.request(0, 64)
        done_b = bank.request(64, 64)
        assert done_a == pytest.approx(64.0)
        assert done_b == pytest.approx(64.0)  # different channel: no queuing

    def test_total_rate(self):
        sim = Simulator()
        bank = MultiChannel(sim, 4, 25.6)
        assert bank.total_rate == pytest.approx(102.4)

    def test_bytes_served_accumulates(self):
        sim = Simulator()
        bank = MultiChannel(sim, 2, 1.0)
        bank.request(0, 64)
        bank.request(64, 64)
        assert bank.bytes_served == 128


class TestFifoResource:
    def test_grants_up_to_capacity(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=2)
        a = res.acquire()
        b = res.acquire()
        c = res.acquire()
        assert a.triggered and b.triggered
        assert not c.triggered
        assert res.queued == 1

    def test_release_wakes_waiter_fifo(self):
        sim = Simulator()
        res = FifoResource(sim, capacity=1)
        order = []

        def holder():
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        def waiter(tag):
            yield res.acquire()
            order.append((tag, sim.now))
            yield sim.timeout(5.0)
            res.release()

        sim.process(holder())
        sim.process(waiter("w1"))
        sim.process(waiter("w2"))
        sim.run()
        assert order == [("w1", 10.0), ("w2", 15.0)]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        res = FifoResource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            FifoResource(Simulator(), capacity=0)

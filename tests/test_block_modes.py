"""Batched-vs-stepwise block-stream parity.

The batched block-stream kernel (``REPRO_SIM_BLOCKS=batched``, the
default) issues/serves/replies whole runs of blocks in one pass through
:meth:`Simulator.schedule_batch`; the stepwise path is the original
block-at-a-time callback chain, kept as the determinism reference.  The
two must be *indistinguishable in results*: every registered
experiment's artifact byte-identical, and the randomized crash lane's
violation fingerprints unchanged.

The tier-1 lane covers the flagship spec subset at a tiny scale across
>=3 seeds; the ``slow`` (nightly) lane sweeps every registered spec.
A direct unit test pins :meth:`schedule_batch` itself to per-entry
``call_at`` semantics, including the sorted-run splice fast path's
edge cases.
"""

import json
import os

import pytest

from repro.experiments import registry
from repro.experiments.runner import run_sweep
from repro.sim.engine import BLOCKS_ENV, SimulationError, Simulator, block_mode
from repro.workloads.fuzz import fuzz_round

SEEDS = (1, 7, 23)

#: Tier-1 subset, matching test_engine_determinism's smoke matrix.
SMOKE_SPECS = (
    "ycsb_latency",
    "txn_abort_rate",
    "failover_availability",
    "fig7a",
)

SMOKE_SCALE = 0.02


def _artifact_bytes(spec_name: str, mode: str, seed: int, scale: float) -> bytes:
    os.environ[BLOCKS_ENV] = mode
    try:
        result = run_sweep(registry.get(spec_name), scale=scale, base_seed=seed)
    finally:
        os.environ.pop(BLOCKS_ENV, None)
    payload = result.to_json_dict()
    payload["elapsed_s"] = 0.0  # wall clock: the one legitimately varying field
    return json.dumps(payload, sort_keys=True).encode()


def test_block_mode_selection():
    assert block_mode() == "batched"
    os.environ[BLOCKS_ENV] = "stepwise"
    try:
        assert block_mode() == "stepwise"
    finally:
        os.environ.pop(BLOCKS_ENV, None)
    os.environ[BLOCKS_ENV] = "nonsense"
    try:
        with pytest.raises(SimulationError):
            block_mode()
    finally:
        os.environ.pop(BLOCKS_ENV, None)


@pytest.mark.parametrize("spec_name", SMOKE_SPECS)
def test_batched_matches_stepwise_artifacts(spec_name):
    for seed in SEEDS:
        stepwise = _artifact_bytes(spec_name, "stepwise", seed, SMOKE_SCALE)
        batched = _artifact_bytes(spec_name, "batched", seed, SMOKE_SCALE)
        assert stepwise == batched, (spec_name, seed)


def test_fuzz_fingerprints_identical_across_block_modes():
    """The randomized crash lane — in-flight SABRes cancelled at
    failover, the hardest thing for a batch split to get right — must
    produce identical violation fingerprints in both modes."""
    for seed in (505, 616):
        os.environ[BLOCKS_ENV] = "stepwise"
        try:
            a = fuzz_round("sabre", 4, seed=seed, duration_ns=40_000.0,
                           crash_cycles=3)
        finally:
            os.environ.pop(BLOCKS_ENV, None)
        b = fuzz_round("sabre", 4, seed=seed, duration_ns=40_000.0,
                       crash_cycles=3)
        assert a.fingerprint == b.fingerprint, seed


@pytest.mark.parametrize(
    "spec_name", ("gray_availability", "partition_availability")
)
def test_fault_specs_are_block_mode_invariant(spec_name):
    """The fault-injection sweeps: gray/partition windows open and
    close while block streams are mid-flight, and the degradation
    table and service multipliers are read at fire time — so the
    batched kernel must land on the very same per-packet faults the
    stepwise reference does."""
    for seed in SEEDS:
        stepwise = _artifact_bytes(spec_name, "stepwise", seed, SMOKE_SCALE)
        batched = _artifact_bytes(spec_name, "batched", seed, SMOKE_SCALE)
        assert stepwise == batched, (spec_name, seed)


def test_fault_fuzz_fingerprints_identical_across_block_modes():
    """Mid-transfer fault windows under both kernels: gray + partition
    + skew (and crashes) opening while multi-block SABRes stream.  The
    fingerprints — including refusal and re-arm counters — must not
    depend on the block path."""
    kw = dict(
        duration_ns=40_000.0,
        crash_cycles=2,
        gray_windows=2,
        partition_windows=2,
        skew_max_ns=1_000.0,
    )
    for seed in (505, 616):
        os.environ[BLOCKS_ENV] = "stepwise"
        try:
            a = fuzz_round("sabre", 4, seed=seed, **kw)
        finally:
            os.environ.pop(BLOCKS_ENV, None)
        b = fuzz_round("sabre", 4, seed=seed, **kw)
        assert a.fingerprint == b.fingerprint, seed
        assert a.gray_windows + a.straggler_windows == 2


@pytest.mark.slow
@pytest.mark.parametrize("spec_name", sorted(set(registry.names())))
def test_every_registered_spec_is_block_mode_invariant(spec_name):
    """Nightly lane: the full registry, three seeds, both block paths."""
    for seed in SEEDS:
        stepwise = _artifact_bytes(spec_name, "stepwise", seed, SMOKE_SCALE)
        batched = _artifact_bytes(spec_name, "batched", seed, SMOKE_SCALE)
        assert stepwise == batched, (spec_name, seed)


# ----------------------------------------------------------------------
# schedule_batch: the kernel's scheduling primitive
# ----------------------------------------------------------------------

def _record(order, sim, tag):
    order.append((sim.now, tag))


def _dispatch_order(schedule):
    """Dispatch order of ``schedule(sim, order)`` driven to completion.

    ``schedule`` runs *inside* a callback (the realistic caller: the
    batched kernel always schedules from within event dispatch, with
    lanes and horizon in their steady state).
    """
    sim = Simulator(scheduler="calendar")
    order = []
    # Prime the calendar: land some entries in every lane so the near
    # window has real content and a nonzero horizon before the batch.
    for d in (0.0, 10.0, 50.0, 90.0, 5_000.0, 9_000.0):
        sim.call_later(d, _record, order, sim, f"prime@{d}")
    sim.call_later(20.0, schedule, sim, order)
    sim.run()
    return order


def _batch_via_call_at(entries):
    def schedule(sim, order):
        for when, tag in entries:
            sim.call_at(when, _record, order, sim, tag)
    return schedule


def _batch_via_schedule_batch(entries):
    def schedule(sim, order):
        sim.schedule_batch(
            [(when, _record, (order, sim, tag)) for when, tag in entries]
        )
    return schedule


def _assert_batch_equivalent(entries):
    """schedule_batch must dispatch exactly like per-entry call_at."""
    a = _dispatch_order(_batch_via_call_at(entries))
    b = _dispatch_order(_batch_via_schedule_batch(entries))
    assert a == b, entries


def test_schedule_batch_presorted_run():
    # The kernel's common case: consecutive block timestamps, all
    # inside the near window, landing in one gap (splice fast path).
    _assert_batch_equivalent([(21.0 + 2.0 * i, f"b{i}") for i in range(8)])


def test_schedule_batch_spans_all_lanes():
    # Immediate (when == now at schedule time 20.0), near, and far
    # entries in one batch.
    _assert_batch_equivalent(
        [(20.0, "imm"), (25.0, "near1"), (30.0, "near2"), (8_000.0, "far")]
    )


def test_schedule_batch_run_leaves_the_gap():
    # A run that starts between two existing entries (prime@50, prime@90)
    # and then crosses below the lower neighbor: the splice must stop at
    # the gap edge and the rest go through the general path.
    _assert_batch_equivalent(
        [(60.0, "in-gap1"), (65.0, "in-gap2"), (95.0, "past-gap")]
    )


def test_schedule_batch_out_of_order_input():
    # Not presorted: the splice fast path must bail to per-entry
    # handling without corrupting lane order.
    _assert_batch_equivalent(
        [(40.0, "x"), (22.0, "y"), (70.0, "z"), (22.0, "y2"), (41.0, "w")]
    )


def test_schedule_batch_equal_times_fifo():
    # Equal timestamps dispatch in submission (seq) order.
    _assert_batch_equivalent([(33.0, f"t{i}") for i in range(6)])


def test_schedule_batch_past_time_raises_and_preserves_state():
    sim = Simulator(scheduler="calendar")
    order = []
    boom = []

    def schedule(sim, order):
        try:
            sim.schedule_batch(
                [
                    (25.0, _record, (order, sim, "ok")),
                    (1.0, _record, (order, sim, "past")),
                ]
            )
        except SimulationError as exc:
            boom.append(str(exc))

    for d in (10.0, 50.0):
        sim.call_later(d, _record, order, sim, f"prime@{d}")
    sim.call_later(20.0, schedule, sim, order)
    sim.run()
    assert boom and "past" in boom[0]
    # The pre-raise entry was injected and fires; lanes stay consistent.
    assert (25.0, "ok") in order
    assert [tag for _, tag in order].count("prime@50.0") == 1


def test_schedule_batch_returns_cancellable_handles():
    sim = Simulator(scheduler="calendar")
    order = []

    def schedule(sim, order):
        handles = sim.schedule_batch(
            [
                (25.0, _record, (order, sim, "keep")),
                (26.0, _record, (order, sim, "drop")),
                (27.0, _record, (order, sim, "keep2")),
            ]
        )
        sim.cancel_call(handles[1])

    sim.call_later(20.0, schedule, sim, order)
    sim.run()
    assert [tag for _, tag in order] == ["keep", "keep2"]
    assert sim.events_cancelled == 1


def test_schedule_batch_matches_on_heap_scheduler_too():
    entries = [(21.0 + 3.0 * i, f"b{i}") for i in range(5)]

    def run(scheduler, via):
        sim = Simulator(scheduler=scheduler)
        order = []
        sim.call_later(20.0, via(entries), sim, order)
        sim.run()
        return order

    assert run("heap", _batch_via_call_at) == run("heap", _batch_via_schedule_batch)
    assert run("heap", _batch_via_schedule_batch) == run(
        "calendar", _batch_via_schedule_batch
    )

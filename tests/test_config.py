"""Unit tests for repro.common.config (Table 2 defaults)."""

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    ClusterConfig,
    CoreConfig,
    FabricConfig,
    MemoryConfig,
    NocConfig,
    NodeConfig,
    RmcConfig,
    SabreConfig,
    SabreMode,
    default_cluster,
)
from repro.common.errors import ConfigError


def test_default_cluster_matches_table2():
    cfg = default_cluster()
    assert cfg.nodes == 2
    node = cfg.node
    assert node.cores.count == 16
    assert node.cores.freq_ghz == 2.0
    assert node.caches.block_bytes == 64
    assert node.caches.llc_bytes == 2 * 1024 * 1024
    assert node.memory.latency_ns == 50.0
    assert node.memory.channels == 4
    assert node.memory.channel_gbps == pytest.approx(25.6)
    assert node.noc.cycles_per_hop == 3
    assert node.rmc.backends == 4
    assert cfg.fabric.hop_latency_ns == 35.0
    assert cfg.fabric.link_gbps == 100.0


def test_sabre_defaults_match_section_5_1():
    sabre = SabreConfig()
    assert sabre.stream_buffers == 16
    assert sabre.stream_buffer_depth == 32
    # The paper reports 560 B of SRAM per R2P2 (16 x (24 + 11)).
    assert sabre.total_sram_bytes() == 560


def test_core_cycle_ns():
    assert CoreConfig().cycle_ns == pytest.approx(0.5)
    assert RmcConfig().cycle_ns == pytest.approx(1.0)


def test_cache_block_counts():
    caches = CacheConfig()
    assert caches.l1d_blocks == 512
    assert caches.llc_blocks == 32768


def test_memory_total_bandwidth():
    assert MemoryConfig().total_gbps == pytest.approx(102.4)


def test_noc_hop_latency():
    assert NocConfig().hop_ns == pytest.approx(1.5)


def test_validate_rejects_core_mesh_mismatch():
    node = dataclasses.replace(NodeConfig(), cores=CoreConfig(count=15))
    with pytest.raises(ConfigError):
        node.validate()


def test_validate_rejects_bad_page_size():
    node = dataclasses.replace(NodeConfig(), page_bytes=100)
    with pytest.raises(ConfigError):
        node.validate()


def test_with_sabre_mode_switches_only_mode():
    cfg = default_cluster()
    other = cfg.with_sabre_mode(SabreMode.LOCKING)
    assert other.node.sabre.mode is SabreMode.LOCKING
    assert other.node.sabre.stream_buffers == cfg.node.sabre.stream_buffers
    assert cfg.node.sabre.mode is SabreMode.SPECULATIVE  # original untouched


def test_cluster_validate_rejects_zero_nodes():
    with pytest.raises(ConfigError):
        dataclasses.replace(ClusterConfig(), nodes=0).validate()


def test_fabric_config_defaults():
    fabric = FabricConfig()
    assert fabric.header_bytes == 16

"""Unit tests for the physical backing store."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.mem.backing import PhysicalMemory


def test_allocate_returns_aligned_base():
    mem = PhysicalMemory()
    base = mem.allocate(100)
    assert base % 64 == 0


def test_read_back_written_bytes():
    mem = PhysicalMemory()
    base = mem.allocate(256)
    mem.write(base + 10, b"hello")
    assert mem.read(base + 10, 5) == b"hello"


def test_fresh_allocation_is_zeroed():
    mem = PhysicalMemory()
    base = mem.allocate(64)
    assert mem.read(base, 64) == bytes(64)


def test_multiple_regions_independent():
    mem = PhysicalMemory()
    a = mem.allocate(64)
    b = mem.allocate(64)
    mem.write(a, b"A" * 64)
    mem.write(b, b"B" * 64)
    assert mem.read(a, 64) == b"A" * 64
    assert mem.read(b, 64) == b"B" * 64


def test_unmapped_access_rejected():
    mem = PhysicalMemory()
    with pytest.raises(SimulationError):
        mem.read(0x10, 4)


def test_overrun_rejected():
    mem = PhysicalMemory()
    base = mem.allocate(64)
    with pytest.raises(SimulationError):
        mem.read(base + 60, 8)


def test_zero_size_allocation_rejected():
    mem = PhysicalMemory()
    with pytest.raises(SimulationError):
        mem.allocate(0)


def test_u64_roundtrip():
    mem = PhysicalMemory()
    base = mem.allocate(64)
    mem.write_u64(base + 8, 0xDEADBEEF12345678)
    assert mem.read_u64(base + 8) == 0xDEADBEEF12345678


def test_u64_wraps_to_64_bits():
    mem = PhysicalMemory()
    base = mem.allocate(64)
    mem.write_u64(base, 2**64 + 5)
    assert mem.read_u64(base) == 5


def test_custom_alignment():
    mem = PhysicalMemory()
    base = mem.allocate(10, align=4096)
    assert base % 4096 == 0


@given(st.binary(min_size=1, max_size=512), st.integers(min_value=0, max_value=64))
def test_write_read_roundtrip(data, offset):
    mem = PhysicalMemory()
    base = mem.allocate(len(data) + 64)
    mem.write(base + offset, data)
    assert mem.read(base + offset, len(data)) == data

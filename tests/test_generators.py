"""Distributional tests for the workload generators.

The alias-method Zipfian sampler replaced the per-sample CDF search on
the hot path; these tests *pin* it to the legacy sampler's
distribution with chi-squared goodness-of-fit over the theta grid —
same seed stream, same id space — plus boundary cases for the uniform
picker.  (The two samplers consume the identical RNG stream but map
draws to ranks differently, so they must agree in distribution, never
draw-for-draw.)
"""

import math

import pytest

from repro.workloads.generators import UniformPicker, ZipfianPicker

#: The theta grid the satellite pins (YCSB default in the middle).
THETA_GRID = (0.3, 0.7, 0.99, 1.2)


def chi2_critical(df: int, z: float = 3.09) -> float:
    """Wilson–Hilferty approximation of the chi-squared quantile
    (``z = 3.09`` ~ p = 0.999, so a correct sampler fails one run in a
    thousand; the seeds below are fixed, so the tests are
    deterministic)."""
    a = 2.0 / (9.0 * df)
    return df * (1.0 - a + z * math.sqrt(a)) ** 3


def zipf_probs(n: int, theta: float) -> list:
    weights = [1.0 / math.pow(rank, theta) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def counts_of(picker, draws: int, n: int) -> list:
    counts = [0] * n
    for _ in range(draws):
        counts[picker.pick()] += 1
    return counts


def chi2_stat(observed: list, expected: list) -> float:
    return sum(
        (o - e) ** 2 / e for o, e in zip(observed, expected) if e > 0
    )


class TestAliasZipfianDistribution:
    N = 24
    DRAWS = 30_000

    @pytest.mark.parametrize("theta", THETA_GRID)
    def test_alias_matches_analytic_distribution(self, theta):
        """Goodness of fit of the alias sampler against the exact
        Zipf probabilities."""
        picker = ZipfianPicker(range(self.N), seed=42, theta=theta)
        observed = counts_of(picker, self.DRAWS, self.N)
        expected = [p * self.DRAWS for p in zipf_probs(self.N, theta)]
        stat = chi2_stat(observed, expected)
        assert stat < chi2_critical(self.N - 1), (theta, stat)

    @pytest.mark.parametrize("theta", THETA_GRID)
    def test_alias_pinned_to_cdf_sampler(self, theta):
        """Two-sample chi-squared: the alias sampler against the legacy
        CDF sampler on the *same seed stream* — the regression pin that
        would catch a mis-built alias table even if it were still
        approximately Zipfian."""
        alias = ZipfianPicker(range(self.N), seed=11, theta=theta)
        legacy = ZipfianPicker(range(self.N), seed=11, theta=theta,
                               method="cdf")
        a = counts_of(alias, self.DRAWS, self.N)
        b = counts_of(legacy, self.DRAWS, self.N)
        # Pearson two-sample statistic with equal sample sizes.
        stat = sum(
            (ai - bi) ** 2 / (ai + bi) for ai, bi in zip(a, b) if ai + bi
        )
        assert stat < chi2_critical(self.N - 1), (theta, stat)

    def test_alias_table_is_a_valid_partition(self):
        """Structural invariant: every column's kept+donated mass
        reconstructs the exact scaled probabilities."""
        n, theta = 17, 0.99
        picker = ZipfianPicker(range(n), seed=1, theta=theta)
        rebuilt = [0.0] * n
        for i in range(n):
            rebuilt[i] += picker._prob[i]
            rebuilt[picker._alias[i]] += 1.0 - picker._prob[i]
        probs = zipf_probs(n, theta)
        for i in range(n):
            assert rebuilt[i] / n == pytest.approx(probs[i], abs=1e-9)

    def test_one_rng_draw_per_pick(self):
        """The alias sampler must consume exactly one uniform per pick
        (the property that keeps seed-stream budgets unchanged)."""
        picker = ZipfianPicker(range(10), seed=3)
        calls = {"n": 0}
        real = picker._rng.random

        def counting():
            calls["n"] += 1
            return real()

        picker._rng.random = counting
        for _ in range(100):
            picker.pick()
        assert calls["n"] == 100

    def test_cdf_method_unchanged(self):
        """The legacy sampler still produces its historical stream."""
        legacy = ZipfianPicker(range(50), seed=7, method="cdf")
        first = [legacy.pick() for _ in range(10)]
        again = ZipfianPicker(range(50), seed=7, method="cdf")
        assert [again.pick() for _ in range(10)] == first

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ZipfianPicker(range(5), seed=1, method="bogus")

    def test_single_object(self):
        picker = ZipfianPicker([99], seed=5)
        assert all(picker.pick() == 99 for _ in range(20))

    def test_hot_fraction_agrees_with_sampling(self):
        picker = ZipfianPicker(range(100), seed=9, theta=0.99)
        draws = 20_000
        observed = counts_of(picker, draws, 100)
        head = sum(observed[:10]) / draws
        assert head == pytest.approx(picker.hot_fraction(10), abs=0.03)


class TestUniformPickerBoundaries:
    def test_single_object(self):
        picker = UniformPicker([7], seed=1)
        assert all(picker.pick() == 7 for _ in range(10))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            UniformPicker([], seed=1)

    def test_covers_full_range(self):
        picker = UniformPicker(range(8), seed=2)
        seen = {picker.pick() for _ in range(400)}
        assert seen == set(range(8))

    def test_deterministic_per_label(self):
        a = UniformPicker(range(100), seed=4, label="x")
        b = UniformPicker(range(100), seed=4, label="x")
        c = UniformPicker(range(100), seed=4, label="y")
        stream_a = [a.pick() for _ in range(20)]
        assert [b.pick() for _ in range(20)] == stream_a
        assert [c.pick() for _ in range(20)] != stream_a

    def test_uniformity_chi_squared(self):
        n, draws = 16, 20_000
        picker = UniformPicker(range(n), seed=6)
        observed = counts_of(picker, draws, n)
        expected = [draws / n] * n
        assert chi2_stat(observed, expected) < chi2_critical(n - 1)

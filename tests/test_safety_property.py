"""The paper's central correctness claim, tested as a property.

Under *any* reader/writer schedule, a SABRe that reports success must
have returned an atomic snapshot (no torn payloads), for every sound
CC variant.  Hypothesis drives randomized contention mixes; the
ground-truth stamp audit in the microbenchmark does the checking.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import ClusterConfig, SabreMode
from repro.workloads.microbench import MicrobenchConfig, run_microbench

SOUND_MODES = (
    SabreMode.SPECULATIVE,
    SabreMode.NO_SPECULATION,
    SabreMode.LOCKING,
)

schedules = st.fixed_dictionaries(
    {
        "object_size": st.sampled_from([64, 128, 200, 1024, 4096]),
        "n_objects": st.integers(min_value=1, max_value=12),
        "readers": st.integers(min_value=1, max_value=4),
        "writers": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**31),
        "writer_think_ns": st.sampled_from([0.0, 100.0, 800.0]),
    }
)


def run_schedule(mode: SabreMode, params: dict):
    cfg = MicrobenchConfig(
        mechanism="sabre",
        duration_ns=30_000.0,
        warmup_ns=4_000.0,
        cluster=ClusterConfig().with_sabre_mode(mode),
        **params,
    )
    return run_microbench(cfg)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=schedules)
def test_speculative_sabres_never_return_torn_data(params):
    result = run_schedule(SabreMode.SPECULATIVE, params)
    assert result.undetected_violations == 0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=schedules)
def test_no_speculation_never_returns_torn_data(params):
    result = run_schedule(SabreMode.NO_SPECULATION, params)
    assert result.undetected_violations == 0


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=schedules)
def test_locking_never_returns_torn_data_and_never_aborts(params):
    result = run_schedule(SabreMode.LOCKING, params)
    assert result.undetected_violations == 0
    assert result.sabre_aborts == 0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=schedules)
def test_percl_versions_detect_all_torn_reads_with_wide_stamps(params):
    """With 16-bit stamps and short runs (no version wraparound), the
    software check also catches every violation — at a CPU cost."""
    cfg = MicrobenchConfig(
        mechanism="percl_versions",
        duration_ns=30_000.0,
        warmup_ns=4_000.0,
        **params,
    )
    result = run_microbench(cfg)
    assert result.undetected_violations == 0


fair_schedules = st.fixed_dictionaries(
    {
        "object_size": st.sampled_from([64, 128, 1024, 4096]),
        # Liveness needs a *fair* schedule: a zero-think writer that
        # saturates a single object legitimately livelocks optimistic
        # readers (the case for locking/RPC fallback, §5.1).
        "n_objects": st.integers(min_value=4, max_value=12),
        "readers": st.integers(min_value=1, max_value=4),
        "writers": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**31),
        "writer_think_ns": st.sampled_from([200.0, 800.0]),
    }
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=fair_schedules)
def test_progress_under_contention(params):
    """Liveness: despite aborts and retries, readers keep completing
    whenever writers leave any slack at all."""
    result = run_schedule(SabreMode.SPECULATIVE, params)
    assert len(result.op_latency) > 0

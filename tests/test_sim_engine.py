"""Unit tests for the discrete-event kernel.

The ``sim`` fixture parametrizes every test over both scheduler
implementations (calendar and the legacy heap), so the kernel contract
is pinned identically for each.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Interrupt, Simulator


@pytest.fixture(params=["calendar", "heap"])
def sim(request) -> Simulator:
    return Simulator(scheduler=request.param)


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_later_ordering():
    sim = Simulator()
    order = []
    sim.call_later(5.0, lambda: order.append("b"))
    sim.call_later(1.0, lambda: order.append("a"))
    sim.call_later(9.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_fifo_among_equal_times():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.call_later(3.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_cannot_schedule_in_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda: None)


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.call_later(10.0, lambda: fired.append(1))
    stopped = sim.run(until=5.0)
    assert stopped == 5.0
    assert fired == []
    sim.run()
    assert fired == [1]


def test_timeout_process():
    sim = Simulator()
    seen = []

    def proc():
        yield sim.timeout(4.0)
        seen.append(sim.now)
        yield sim.timeout(6.0)
        seen.append(sim.now)
        return "done"

    p = sim.process(proc())
    sim.run()
    assert seen == [4.0, 10.0]
    assert p.triggered
    assert p.value == "done"


def test_process_waits_on_event():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def opener():
        yield sim.timeout(7.0)
        gate.succeed("opened")

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    sim.process(opener())
    sim.process(waiter())
    sim.run()
    assert seen == [(7.0, "opened")]


def test_event_double_succeed_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_late_callback_on_triggered_event_still_fires():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    seen = []
    sim.run()
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == [42]


def test_process_waiting_on_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(3.0, "child-result")]


def test_all_of_barrier():
    sim = Simulator()
    log = []

    def waiter():
        yield sim.all_of([sim.timeout(2.0), sim.timeout(8.0), sim.timeout(5.0)])
        log.append(sim.now)

    sim.process(waiter())
    sim.run()
    assert log == [8.0]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    log = []

    def waiter():
        value = yield sim.all_of([])
        log.append((sim.now, value))

    sim.process(waiter())
    sim.run()
    assert log == [(0.0, [])]


def test_all_of_value_collects_children_in_trigger_order():
    """Regression: a non-empty AllOf used to succeed with ``None``
    while an empty one succeeded with ``[]``.  The barrier's value is
    now always a list — the child values in completion order."""
    sim = Simulator()
    log = []

    def waiter():
        value = yield sim.all_of(
            [
                sim.timeout(6.0, "slow"),
                sim.timeout(1.0, "fast"),
                sim.timeout(3.0, "mid"),
            ]
        )
        log.append((sim.now, value))

    sim.process(waiter())
    sim.run()
    assert log == [(6.0, ["fast", "mid", "slow"])]


def test_all_of_includes_already_triggered_children():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("early")
    log = []

    def waiter():
        value = yield sim.all_of([ev, sim.timeout(2.0, "late")])
        log.append(value)

    sim.process(waiter())
    sim.run()
    assert log == [["early", "late"]]


def test_interrupt_breaks_wait():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
            log.append("slept")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.cause))

    p = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(4.0)
        p.interrupt("wake-up")

    sim.process(interrupter())
    sim.run()
    assert log == [("interrupted", 4.0, "wake-up")]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-0.5)


def test_peek():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.call_later(3.5, lambda: None)
    assert sim.peek() == 3.5


# ----------------------------------------------------------------------
# scheduled-call cancellation and heap compaction
# ----------------------------------------------------------------------


def test_cancelled_call_never_runs():
    sim = Simulator()
    fired = []
    handle = sim.call_later(5.0, lambda: fired.append("a"))
    sim.call_later(6.0, lambda: fired.append("b"))
    sim.cancel_call(handle)
    sim.run()
    assert fired == ["b"]
    assert sim.now == 6.0


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    fired = []
    handle = sim.call_later(1.0, lambda: fired.append(1))
    sim.run()
    assert fired == [1]
    sim.cancel_call(handle)  # already ran: no-op
    sim.cancel_call(handle)
    assert sim.live_calls == 0


def test_peek_skips_cancelled_entries():
    sim = Simulator()
    early = sim.call_later(1.0, lambda: None)
    sim.call_later(9.0, lambda: None)
    sim.cancel_call(early)
    assert sim.peek() == 9.0


def test_fifo_order_survives_interleaved_cancels():
    sim = Simulator()
    order = []
    handles = [
        sim.call_later(3.0, lambda i=i: order.append(i)) for i in range(6)
    ]
    for i in (1, 4):
        sim.cancel_call(handles[i])
    sim.run()
    assert order == [0, 2, 3, 5]


def test_mass_cancellation_compacts_heap():
    """The failover soak pattern: schedule far-future watchdogs, cancel
    nearly all of them.  Lazy deletion alone would hold every dead
    entry until its deadline; compaction keeps the heap at the size of
    the live work."""
    sim = Simulator()
    handles = [sim.call_later(1e6 + i, lambda: None) for i in range(5000)]
    for handle in handles[:4900]:
        sim.cancel_call(handle)
    assert sim.compactions >= 1
    assert sim.heap_size < 1000  # ~100 live + bounded cancelled residue
    assert sim.live_calls == 100
    sim.run()
    assert sim.heap_size == 0


def test_compaction_during_run_is_safe():
    """Cancelling (and thereby compacting) from inside a callback must
    not confuse the run loop's view of the heap."""
    sim = Simulator()
    fired = []
    victims = [sim.call_later(50.0 + i, lambda: fired.append("dead"))
               for i in range(200)]

    def killer():
        for handle in victims:
            sim.cancel_call(handle)
        fired.append("killed")

    sim.call_later(1.0, killer)
    sim.call_later(100.0, lambda: fired.append("tail"))
    sim.run()
    assert fired == ["killed", "tail"]
    assert sim.now == 100.0


# ----------------------------------------------------------------------
# self-cancellation during fire (regression: must be a clean no-op on
# both schedulers, not a double-compaction accounting bug)
# ----------------------------------------------------------------------


class TestSelfCancelDuringFire:
    def test_handle_cancelled_inside_its_own_callback(self, sim):
        """A callback cancelling its *own* handle mid-fire must not
        skew the cancelled count: the entry was already consumed, so
        the cancel is a no-op and later live entries still run."""
        fired = []
        handles = {}

        def selfish():
            sim.cancel_call(handles["me"])  # already consumed: no-op
            sim.cancel_call(handles["me"])  # idempotent too
            fired.append("selfish")

        handles["me"] = sim.call_later(1.0, selfish)
        sim.call_later(2.0, lambda: fired.append("tail"))
        sim.run()
        assert fired == ["selfish", "tail"]
        assert sim.live_calls == 0
        assert sim.heap_size == 0

    def test_self_cancel_does_not_poison_compaction_accounting(self, sim):
        """The accounting bug this pins down: if a self-cancel were
        counted, ``_cancelled`` would exceed the real dead-entry count
        and a later compaction would drive it negative — visible as
        ``live_calls`` over-reporting.  Mass-cancel after a burst of
        self-cancels and check every invariant."""
        fired = []
        handles = []

        def selfish(i):
            sim.cancel_call(handles[i])
            fired.append(i)

        for i in range(50):
            handles.append(sim.call_later(1.0 + i, lambda i=i: selfish(i)))
        victims = [sim.call_later(1e6 + i, lambda: fired.append("dead"))
                   for i in range(200)]
        sim.run(until=500.0)
        assert fired == list(range(50))
        for v in victims:
            sim.cancel_call(v)
        assert sim.live_calls == 0
        sim.run()
        assert fired == list(range(50))
        assert sim.heap_size == 0
        assert sim.live_calls == 0

    def test_cancel_sibling_scheduled_at_same_time(self, sim):
        """Cancelling a same-timestamp later sibling from inside a
        firing callback must suppress it on both schedulers."""
        fired = []
        sibling = {}

        def first():
            fired.append("first")
            sim.cancel_call(sibling["h"])

        sim.call_later(3.0, first)
        sibling["h"] = sim.call_later(3.0, lambda: fired.append("second"))
        sim.call_later(3.0, lambda: fired.append("third"))
        sim.run()
        assert fired == ["first", "third"]
        assert sim.heap_size == 0

    def test_reschedule_self_from_callback(self, sim):
        """A callback rescheduling itself gets a fresh handle; the
        consumed one stays dead."""
        fired = []
        state = {}

        def tick():
            fired.append(sim.now)
            if len(fired) < 3:
                state["h"] = sim.call_later(5.0, tick)
                sim.cancel_call(state["h"])  # cancel the *new* one...
                state["h"] = sim.call_later(10.0, tick)  # ...keep this

        state["h"] = sim.call_later(10.0, tick)
        sim.run()
        assert fired == [10.0, 20.0, 30.0]
        assert sim.heap_size == 0


# ----------------------------------------------------------------------
# review regressions: past `until`, infinite delays
# ----------------------------------------------------------------------


def test_run_until_past_time_is_a_noop(sim):
    """``run(until)`` with ``until`` before ``now`` must not move the
    clock backwards (the calendar's immediate lane is sorted only
    because time is non-decreasing)."""
    fired = []
    sim.call_later(20.0, lambda: fired.append("a"))
    sim.run()
    assert sim.now == 20.0
    assert sim.run(until=5.0) == 20.0  # no-op, clock untouched
    assert sim.now == 20.0
    sim.call_later(0.0, lambda: fired.append("b"))
    sim.call_later(1.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 21.0


def test_infinite_delay_fires_and_run_terminates(sim):
    """A ``float('inf')`` deadline must fire (at t=inf) rather than
    spin the refill loop forever."""
    fired = []
    sim.call_later(float("inf"), lambda: fired.append("end-of-time"))
    sim.call_later(3.0, lambda: fired.append("soon"))
    sim.run()
    assert fired == ["soon", "end-of-time"]
    assert sim.heap_size == 0

"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets pip fall back to ``setup.py develop``.
"""

from setuptools import find_packages, setup

setup(
    name="sabres-repro",
    description="Reproduction of SABRes: atomic object reads for "
    "in-memory rack-scale computing (MICRO 2016)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    entry_points={
        "console_scripts": [
            "repro-harness=repro.harness.cli:main",
            "repro-perf=repro.perf.cli:main",
            "repro-campaign=repro.experiments.campaign_cli:main",
            "repro-serve=repro.serve.cli:main",
            "repro-load=repro.loadgen.cli:main",
            # Historical name, kept for compatibility.
            "sabres-experiments=repro.harness.cli:main",
        ]
    },
)

"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets pip fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""The sharded rack-scale KV service under YCSB-style load.

Walks the three things the sharded layer adds on top of the two-node
FaRM deployment:

1. consistent-hash placement with primary/backup replication,
2. YCSB core mixes (A/B/C, uniform vs Zipfian) with per-shard
   load/conflict stats,
3. read fallback to a backup replica when the primary copy is wedged.

Run:  PYTHONPATH=src python examples/sharded_ycsb.py
"""

from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.workloads.ycsb import YcsbConfig, run_ycsb


def demo_placement() -> None:
    print("--- consistent-hash placement (4 shards, replication 2) ---")
    kv = ShardedKV(ShardedConfig(n_shards=4, replication=2, n_objects=8))
    for key in kv.keys():
        primary, backup = kv.replicas_of(key)
        print(f"{key:8s} -> primary shard {primary}, backup shard {backup}")
    per_shard = [len(store) for store in kv.stores]
    print(f"objects per shard: {per_shard}")


def demo_mixes() -> None:
    print("\n--- YCSB mixes on 4 shards (SABRe reads, Zipfian keys) ---")
    for workload in ("A", "B", "C"):
        result = run_ycsb(
            YcsbConfig(
                workload=workload,
                distribution="zipfian",
                n_shards=4,
                n_objects=256,
                duration_ns=100_000.0,
                warmup_ns=15_000.0,
            )
        )
        print(
            f"workload {workload}: {result.reads_completed:4d} reads "
            f"({result.mean_read_ns:7.1f} ns), "
            f"{result.writes_completed:4d} writes, "
            f"{result.read_goodput_gbps:5.2f} GB/s, "
            f"imbalance {result.shard_imbalance:.2f}, "
            f"violations {result.undetected_violations}"
        )


def demo_shard_stats() -> None:
    print("\n--- per-shard load under a skewed write-heavy mix ---")
    result = run_ycsb(
        YcsbConfig(
            workload="A",
            distribution="zipfian",
            zipf_theta=1.2,
            n_shards=4,
            n_objects=256,
            duration_ns=100_000.0,
            warmup_ns=15_000.0,
        )
    )
    for row in result.shard_rows:
        print(
            f"shard {row['shard']}: {row['objects']:3.0f} objects, "
            f"{row['reads_routed']:4.0f} reads, "
            f"{row['writes_routed']:3.0f} writes, "
            f"{row['sabre_aborts']:3.0f} aborts, "
            f"{row['replica_updates']:3.0f} replica updates"
        )


def demo_fallback() -> None:
    print("\n--- read fallback: primary copy wedged mid-update ---")
    kv = ShardedKV(
        ShardedConfig(
            n_shards=2,
            replication=2,
            mechanism="percl_versions",
            n_objects=8,
            fallback_after_ns=2_000.0,
        )
    )
    key = kv.keys()[0]
    idx = kv.key_index(key)
    primary, backup = kv.replicas_of(key)
    store = kv.stores[primary]
    locked = store.current_version(idx) + 1
    store.phys.write(store.version_addr(idx), locked.to_bytes(8, "little"))
    print(f"{key}: primary shard {primary} locked (odd version {locked})")

    session = kv.reader_session(0)
    sim = kv.cluster.sim

    def reader():
        ok = yield from session.lookup(key, t_end=50_000.0)
        print(
            f"lookup ok={ok} after {sim.now:.0f} ns: "
            f"{session.stats[primary].retries} primary retries, "
            f"served by backup shard {backup} "
            f"(fallback_reads={session.stats[backup].fallback_reads})"
        )

    sim.process(reader())
    sim.run()


def main() -> None:
    demo_placement()
    demo_mixes()
    demo_shard_stats()
    demo_fallback()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Campaigns: many sweeps as one resumable, QA-scored request.

This file is both a runnable tour and a valid ``repro-campaign``
request (it exposes ``CAMPAIGN``, so ``repro-campaign run
examples/campaign.py`` works too).  The tour:

1. declares a campaign of two stages — a custom latency probe with QA
   bounds attached, plus the paper's fig10 restricted to two object
   sizes — and runs it into a campaign directory;
2. runs the same campaign again to show the resume path: every point
   is served from the journal, nothing re-executes;
3. renders the self-contained HTML report.

Run:  PYTHONPATH=src python examples/campaign.py
"""

import tempfile

from repro.experiments import (
    CampaignContext,
    CampaignRunner,
    CampaignSpec,
    CampaignStage,
    ExperimentSpec,
    QaCheck,
    Variant,
    register,
)
from repro.harness.report import scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def _probe_point(ctx):
    result = run_microbench(
        MicrobenchConfig(
            mechanism=ctx.params["mechanism"],
            object_size=ctx.params["object_size"],
            n_objects=64,
            readers=2,
            duration_ns=scaled_duration(40_000.0, ctx.scale),
            warmup_ns=8_000.0,
            seed=7,
        )
    )
    return {ctx.variant: result.mean_op_latency_ns}


register(
    ExperimentSpec(
        name="example_campaign_probe",
        description="SABRes vs per-CL latency probe with QA bounds",
        axes={"object_size": (128, 2048)},
        variants=(
            Variant("sabre_ns", {"mechanism": "sabre"}),
            Variant("percl_ns", {"mechanism": "percl_versions"}),
        ),
        headers=("object_size", "sabre_ns", "percl_ns"),
        point_fn=_probe_point,
        # Baseline sanity carried by the spec itself: latencies must be
        # positive and SABRes must stay under 100us even at tiny scale.
        qa_checks=(
            QaCheck("sabre_ns", agg="min", lo=0.0),
            QaCheck("sabre_ns", agg="max", hi=100_000.0),
        ),
    )
)

CAMPAIGN = CampaignSpec(
    name="example",
    description="campaign tour: custom probe + fig10 subset",
    scale=0.1,
    stages=[
        CampaignStage("example_campaign_probe", name="probe"),
        CampaignStage(
            "fig10",
            name="fig10_small",
            axes={"object_size": (128, 512)},
            # Request-side QA on top of whatever the spec carries.
            qa=(QaCheck("speedup", agg="min", lo=0.9),),
        ),
    ],
)


def main() -> None:
    root = tempfile.mkdtemp(prefix="campaign-example-")

    print(f"--- first run (cold) into {root}")
    result = CampaignRunner(CAMPAIGN, context=CampaignContext(root)).run()
    for stage in result.stages:
        print(f"=== {stage.stage} (QA {stage.verdict}) ===")
        print(stage.result.table())
    print(f"campaign verdict: {result.verdict}\n")

    print("--- second run: everything served from the journal")
    resumed = CampaignRunner(CAMPAIGN, context=CampaignContext(root)).run()
    total = sum(s.result.points_total for s in resumed.stages)
    print(
        f"{resumed.journal_hits}/{total} points from the journal "
        f"({resumed.elapsed_s:.2f}s; kill -9 mid-campaign and it resumes "
        "from the unfinished points the same way)"
    )

    from repro.harness.htmlreport import render_campaign

    page = render_campaign(CampaignContext(root))
    print(f"report: {page}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-object transactions over the sharded rack-scale KV service.

Walks the transaction layer end to end:

1. a hand-driven read-modify-write transaction — read set, lock,
   validate, apply, replicate — with the per-shard txn stats it leaves
   behind,
2. a conflict: a writer sneaks a commit between a transaction's read
   and its validation, forcing an abort and a retry,
3. the YCSB-T-style mix comparing abort behavior across all five
   Table 1 read mechanisms,
4. what the unsafe baseline costs: ``remote_read`` transactions
   consume torn snapshots the detecting mechanisms never admit.

Run:  PYTHONPATH=src python examples/txn_mix.py
"""

from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.txn_mix import PROTOCOL_VARIANTS, TxnMixConfig, run_txn_mix


def demo_commit() -> None:
    print("--- one read-modify-write transaction, step by step ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=2, replication=2, n_objects=16, object_size=256)
    )
    manager = TxnManager(kv)
    session = manager.session(0)
    sim = kv.cluster.sim
    keys = ["key-0", "key-1", "key-2"]

    def txn():
        outcome = yield from session.run(keys, keys[:2], t_end=200_000.0)
        print(f"committed={outcome.committed} in {outcome.attempts} attempt(s)")
        for key, entry in sorted(outcome.reads.items()):
            print(
                f"  read {key}: shard {entry.shard}, "
                f"observed version {entry.version}, torn={entry.torn}"
            )

    sim.process(txn())
    sim.run()
    for key in keys[:2]:
        idx = kv.key_index(key)
        versions = [
            kv.stores[shard].current_version(idx)
            for shard in kv.replicas_of(key)
        ]
        print(f"  {key}: versions across replicas now {versions}")
    for row in manager.txn_rows():
        print(
            f"  shard {row['shard']}: commits={row['commits']} "
            f"lock_rpcs={row['lock_rpcs']} validate_rpcs={row['validate_rpcs']}"
        )


def demo_conflict() -> None:
    print("\n--- a conflicting writer forces an abort and a retry ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=2, replication=2, n_objects=16, object_size=256)
    )
    manager = TxnManager(kv)
    session = manager.session(0)
    sim = kv.cluster.sim
    key = "key-0"
    primary = kv.primary_of(key)

    def txn():
        outcome = yield from session.run([key], [key], t_end=200_000.0)
        print(
            f"committed={outcome.committed} after {outcome.attempts} attempts "
            f"({outcome.validation_aborts} validation abort(s))"
        )

    def racer():
        # Wait for the transaction's read, then commit a conflicting
        # update before its lock lands.
        while not session.reader.stats[primary].op_latency.values:
            yield sim.timeout(50.0)
        idx = kv.key_index(key)
        from repro.objstore.layout import stamped_payload

        kv.stores[primary].write(idx, stamped_payload(2, kv.cfg.payload_len))
        print("racer committed version 2 between read and lock")

    sim.process(txn())
    sim.process(racer())
    sim.run()


def demo_mix() -> None:
    print("\n--- YCSB-T mix: abort behavior across read mechanisms ---")
    for label, mechanism in PROTOCOL_VARIANTS:
        result = run_txn_mix(
            TxnMixConfig(
                mechanism=mechanism,
                n_shards=2,
                n_objects=24,
                txn_size=3,
                writes_per_txn=2,
                rmw_fraction=0.5,
                distribution="zipfian",
                duration_ns=80_000.0,
                warmup_ns=10_000.0,
                seed=5,
            )
        )
        print(
            f"{label:9s} commits={result.commits:4d} "
            f"abort_rate={result.abort_rate:5.2f} "
            f"lock={result.lock_aborts:3d} validate={result.validation_aborts:3d} "
            f"violations={result.undetected_violations} "
            f"torn_reads={result.torn_reads_observed}"
        )
    print(
        "note: detecting mechanisms keep torn_reads at 0; the remote_read\n"
        "baseline consumes torn snapshots whenever writers race its reads."
    )


def main() -> None:
    demo_commit()
    demo_conflict()
    demo_mix()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Extending the experiment framework: a custom read protocol and a
custom declarative sweep, run in parallel.

Two extension points, no core edits:

1. a new ``ReadProtocol`` — here a paranoid client that pays a
   Pilaf-style checksum *on top of* hardware SABRes ("belt and
   suspenders"), registered under a new mechanism name;
2. a new ``ExperimentSpec`` comparing it against stock SABRes across
   object sizes, executed with a 2-worker sweep.

Run:  PYTHONPATH=src python examples/experiment_sweep.py
"""

from repro.experiments import ExperimentSpec, Variant, register, run_sweep
from repro.harness.report import scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench
from repro.workloads.protocols import HardwareSabreProtocol, register_protocol


@register_protocol
class BeltAndSuspendersProtocol(HardwareSabreProtocol):
    """Hardware SABRe plus a redundant software checksum of the
    delivered payload (modeled as the perCL check cost)."""

    name = "sabre_checked"

    def complete(self, result, buf, wire):
        ok, data = yield from super().complete(result, buf, wire)
        if ok:
            # Redundant paranoia pass over the received bytes, charged
            # at Pilaf's checksum rate.
            yield self.bench.cluster.sim.timeout(
                self.costs.checksum_cost_ns(self.cfg.payload_len)
            )
        return ok, data


def _point(ctx):
    result = run_microbench(
        MicrobenchConfig(
            mechanism=ctx.params["mechanism"],
            object_size=ctx.params["object_size"],
            n_objects=64,
            readers=2,
            duration_ns=scaled_duration(60_000.0, ctx.scale),
            warmup_ns=8_000.0,
            seed=7,
        )
    )
    return {ctx.variant: result.mean_op_latency_ns}


SPEC = register(
    ExperimentSpec(
        name="example_belt_and_suspenders",
        description="stock SABRes vs SABRes + redundant software check",
        axes={"object_size": (128, 1024, 8192)},
        variants=(
            Variant("sabre_ns", {"mechanism": "sabre"}),
            Variant("checked_ns", {"mechanism": "sabre_checked"}),
        ),
        headers=("object_size", "sabre_ns", "checked_ns"),
        point_fn=_point,
    )
)


def main() -> None:
    result = run_sweep(SPEC, scale=0.25, jobs=2)
    print(result.table())
    print(
        f"\n{result.points_total} points, {result.jobs} workers, "
        f"{result.elapsed_s:.1f}s — the redundant check costs latency "
        "at every size and buys nothing: SABRes are already atomic."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live resharding and hotspot rebalancing under load.

Walks the elastic subsystem end to end:

1. a scripted scale-out: a 4-shard deployment grows to 8 mid-run
   while readers and writers keep flowing — per-vnode handoffs,
   double-read windows, writer redirects, and a final placement
   provably identical to a fresh 8-shard deployment,
2. the phased elastic mix: pre/mid/post metering, the tail-latency
   blip, and post-window throughput converging to a run that
   *started* at 8 shards,
3. hotspot rebalancing: a Zipfian-head key gains promoted read
   replicas, shard imbalance drops, the extras demote when the
   load cools.

Run:  PYTHONPATH=src python examples/elastic_scaling.py
"""

from repro.common.rng import make_rng
from repro.objstore.reshard import ReshardManager
from repro.objstore.sharded import HashRing, ShardedConfig, ShardedKV
from repro.workloads.elastic import ElasticConfig, run_elastic


def demo_scale_out() -> None:
    print("--- scale-out: 4 -> 8 shards under load ---")
    cfg = ShardedConfig(
        n_shards=4,
        max_shards=8,
        n_clients=2,
        replication=2,
        n_objects=48,
        object_size=256,
        seed=11,
    )
    kv = ShardedKV(cfg)
    manager = ReshardManager(kv)
    chosen = manager.scale_out(4, at_ns=8_000.0)
    print(f"members {kv.member_shards()} + spares {chosen} joining at t=8000")

    sim = kv.cluster.sim
    t_end = 40_000.0
    keys = kv.keys()

    def reader(session, label):
        pick = make_rng(5, "demo-reader", label)
        while sim.now < t_end:
            yield from session.lookup(keys[pick.randrange(len(keys))], t_end)

    def writer(client, label):
        pick = make_rng(5, "demo-writer", label)
        while sim.now < t_end:
            yield kv.put(client, keys[pick.randrange(len(keys))], t_end)
            yield sim.timeout(pick.uniform(20.0, 120.0))

    for i in range(2):
        sim.process(reader(kv.reader_session(i), i))
        sim.process(writer(i, i))
    sim.run()

    stats = manager.stats
    fresh = HashRing(range(8), vnodes=cfg.vnodes, seed=cfg.seed)
    identical = all(
        kv._placement[idx] == fresh.replicas(kv.key_name(idx), cfg.replication)
        for idx in range(cfg.n_objects)
    )
    violations = sum(s.undetected_violations for s in kv.all_reader_stats())
    print(
        f"members now               : {kv.member_shards()}\n"
        f"vnode handoffs / keys     : {stats.vnode_handoffs} / "
        f"{stats.keys_migrated} migrated ({stats.replica_copies} copies)\n"
        f"writer redirects          : "
        f"{sum(w.reshard_redirects for w in kv.write_stats)} "
        f"(fenced mid-migration, re-issued with remaining budget)\n"
        f"placement == fresh 8-shard: {identical}\n"
        f"undetected violations     : {violations}"
    )
    for t, event, shard in manager.events:
        print(f"  t={t:8.0f}  {event} shard {shard}")


def demo_elastic_mix() -> None:
    print("\n--- the phased elastic mix (with fresh-8-shard baseline) ---")
    result = run_elastic(ElasticConfig(duration_ns=120_000.0, seed=43))
    print(
        f"reads pre / mid / post    : {result.pre_reads} / "
        f"{result.mid_reads} / {result.post_reads}\n"
        f"  ... during migration    : {result.reads_during_migration}\n"
        f"tail blip (mid/pre p95)   : {result.tail_blip:.2f}x\n"
        f"baseline post reads       : {result.baseline_post_reads}\n"
        f"convergence ratio         : {result.convergence_ratio:.3f} "
        f"(1.0 = fresh-8-shard throughput)\n"
        f"undetected violations     : {result.undetected_violations}"
    )


def demo_hotspot_rebalance() -> None:
    print("\n--- hotspot rebalancing: Zipfian head, policy off vs on ---")
    for extras in (0, 2):
        result = run_elastic(
            ElasticConfig(
                target_shards=4,  # no topology change: the policy is the event
                distribution="zipfian",
                rebalance=True,
                max_extra_replicas=extras,
                compare_baseline=False,
                n_objects=64,
                duration_ns=120_000.0,
                seed=47,
            )
        )
        print(
            f"max_extra_replicas={extras}: imbalance "
            f"{result.shard_imbalance:.2f}, "
            f"{result.reshard.hot_promotions} promotions / "
            f"{result.reshard.hot_demotions} demotions, "
            f"violations {result.undetected_violations}"
        )


if __name__ == "__main__":
    demo_scale_out()
    demo_elastic_mix()
    demo_hotspot_rebalance()

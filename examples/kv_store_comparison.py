#!/usr/bin/env python3
"""A FaRM-style distributed key-value store, two builds compared.

The scenario of §7.3: node 0 owns the data store, node 1 runs a
read-heavy KV application.  The baseline build uses FaRM's
per-cache-line versions (software atomicity, intermediate buffering);
the SABRe build keeps the object store unmodified and reads zero-copy.
Writes go to the data owner over an RPC in both builds.

Run:  python examples/kv_store_comparison.py
"""

from repro import FarmConfig, FarmKV


def demo_reads(object_size: int) -> None:
    print(f"\n--- read-only lookups, {object_size} B objects ---")
    for use_sabre in (False, True):
        cfg = FarmConfig(
            use_sabre=use_sabre,
            object_size=object_size,
            n_objects=2048,
            readers=4,
            duration_ns=120_000.0,
            warmup_ns=15_000.0,
        )
        result = FarmKV(cfg).run_readonly()
        build = "SABRe   " if use_sabre else "baseline"
        means = result.breakdown.means()
        print(
            f"{build}: {result.mean_latency_ns:7.1f} ns/lookup, "
            f"{result.goodput_gbps:6.2f} GB/s  "
            f"[transfer {means['transfer']:.0f} | "
            f"framework {means['framework']:.0f} | "
            f"strip {means['stripping']:.0f} | "
            f"app {means['application']:.0f}]"
        )


def demo_writes() -> None:
    print("\n--- writes ship to the data owner over RPC (§2.1) ---")
    cfg = FarmConfig(use_sabre=True, object_size=256, n_objects=16)
    kv = FarmKV(cfg)
    sim = kv.cluster.sim

    def client():
        t0 = sim.now
        yield kv.put("key-7", b"fresh value".ljust(cfg.payload_len, b"\x00"))
        print(f"put(key-7) completed in {sim.now - t0:.1f} ns")
        result = kv.store.read(7)
        print(f"owner now holds version {result.version}: "
              f"{result.data[:11]!r}")

    sim.process(client())
    sim.run()


def main() -> None:
    for size in (128, 1024, 8192):
        demo_reads(size)
    demo_writes()


if __name__ == "__main__":
    main()

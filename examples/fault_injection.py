#!/usr/bin/env python3
"""Gray failures, partitions, stragglers, and clock skew.

Walks the fault-injection layer (`repro.faults`) end to end:

1. a gray failure: a shard turns 10x slower mid-run — the client RPC
   watchdog fires against the slow-but-alive peer and *re-arms*
   instead of spuriously failing the call,
2. an asymmetric partition: a drop window severs one client->shard
   link; new conversations fail fast with a typed
   ``LinkPartitionedError`` while everyone else keeps full access, and
   in-flight exchanges drain losslessly,
3. clock skew: a skewed observer's lease view lags a real crash, so
   it keeps trusting the dead shard until its own (late) view expires,
4. the gray availability mix: readers/writers/transactions riding
   through slow-but-alive windows with the torn-read audit at zero.

Run:  PYTHONPATH=src python examples/fault_injection.py
"""

from repro.common.errors import LinkPartitionedError
from repro.faults import FaultInjector, FaultSchedule, FaultWindow
from repro.objstore.failover import FailoverManager
from repro.objstore.sharded import ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.availability import FailoverMixConfig, run_failover_mix


def demo_gray_failure() -> None:
    print("--- gray failure: slow-but-alive, watchdog re-arms ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=4, replication=2, n_objects=32, object_size=256)
    )
    FailoverManager(kv, rpc_timeout_ns=300.0)  # watchdog far below one RTT
    key = kv.keys()[0]
    primary = kv.primary_of(key)
    FaultInjector(
        kv.cluster,
        FaultSchedule(
            [
                FaultWindow(
                    "gray",
                    start_ns=0.0,
                    end_ns=150_000.0,
                    node=primary,
                    multiplier=40.0,
                )
            ]
        ),
        kv=kv,
    )
    manager = TxnManager(kv)
    session = manager.session(0)
    outcomes = []

    def txn():
        outcome = yield from session.run([key], [key], t_end=200_000.0)
        outcomes.append(outcome)

    kv.cluster.sim.process(txn())
    kv.cluster.sim.run()
    rearms = sum(e.watchdog_rearms for e in kv.all_endpoints())
    timed_out = sum(e.timed_out_calls for e in kv.all_endpoints())
    print(
        f"txn through a 40x-slow primary: committed={outcomes[0].committed}, "
        f"watchdog re-arms={rearms}, spurious timeouts={timed_out}"
    )
    assert outcomes[0].committed and rearms > 0 and timed_out == 0


def demo_asymmetric_partition() -> None:
    print("\n--- asymmetric partition: one link severed, rest healthy ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=2, replication=2, n_objects=16, object_size=256)
    )
    fabric = kv.cluster.fabric
    shard_node = kv.shards[0].node_id
    client_a = kv.clients[0].node_id
    token = fabric.degrade_link(client_a, shard_node, drop=True)
    replies = {}

    def blocked_client():
        reply = yield kv.client_rpc(0).call(shard_node, "shard_put", b"")
        replies["blocked"] = reply

    def healthy_client():
        session = kv.reader_session(1)
        ok = yield from session.lookup(kv.keys()[0], t_end=50_000.0)
        replies["healthy"] = ok

    kv.cluster.sim.process(blocked_client())
    kv.cluster.sim.process(healthy_client())
    kv.cluster.sim.run()
    print(
        f"severed link: typed refusal="
        f"{isinstance(replies['blocked'], LinkPartitionedError)} "
        f"(refusals={fabric.partition_refusals}); "
        f"other client read ok={replies['healthy']}"
    )
    fabric.restore_link(token)
    print(f"window closed: link healthy again={fabric.reachable(client_a, shard_node)}")


def demo_clock_skew() -> None:
    print("\n--- clock skew: a stale lease view lags a real crash ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=2, replication=2, n_objects=16, object_size=256)
    )
    fabric, sim = kv.cluster.fabric, kv.cluster.sim
    sharp, skewed = kv.clients[0].node_id, kv.clients[1].node_id
    fabric.set_clock_skew(skewed, 5_000.0)
    dead = kv.shards[0].node_id
    log = []
    fabric.set_alive(dead, False)  # crash at t=0
    sim.call_at(
        2_000.0,
        lambda: log.append(
            f"t=2000: sharp view alive={fabric.observed_alive(sharp, dead)}, "
            f"skewed view alive={fabric.observed_alive(skewed, dead)}"
        ),
    )
    sim.call_at(
        6_000.0,
        lambda: log.append(
            f"t=6000: skewed view alive={fabric.observed_alive(skewed, dead)}"
            " (skew elapsed)"
        ),
    )
    sim.run()
    for line in log:
        print(line)


def demo_gray_availability_mix() -> None:
    print("\n--- the gray availability mix: 3 slow-windows, 4 shards ---")
    result = run_failover_mix(
        FailoverMixConfig(
            duration_ns=120_000.0,
            cycles=0,
            seed=37,
            distribution="zipfian",
            fault_kind="gray",
            fault_windows=3,
            gray_multiplier=8.0,
            fallback_after_ns=0.0,
        )
    )
    print(
        f"reads completed           : {result.reads_completed}\n"
        f"  ... inside a window     : {result.reads_during_fault} "
        f"({result.fault_read_share:.0%})\n"
        f"writes completed          : {result.writes_completed} "
        f"({result.writes_during_fault} inside windows)\n"
        f"txn commits               : {result.commits}\n"
        f"fault windows             : {result.fault_windows}\n"
        f"undetected violations     : {result.undetected_violations} "
        f"(torn reads in txns: {result.torn_reads_observed})"
    )
    assert result.reads_during_fault > 0
    assert result.undetected_violations == 0


if __name__ == "__main__":
    demo_gray_failure()
    demo_asymmetric_partition()
    demo_clock_skew()
    demo_gray_availability_mix()

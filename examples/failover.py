#!/usr/bin/env python3
"""Shard crashes, backup promotion, fencing, and recovery re-sync.

Walks the failover subsystem end to end:

1. a scripted crash: in-flight work fails with a typed error, the
   backup is promoted (permanently), reads and writes keep flowing,
   and the rejoining shard re-syncs before serving again,
2. fencing: a request stamped with a superseded epoch is refused by
   the handler — the check that keeps demoted primaries harmless,
3. the availability mix: readers/writers/transactions riding through
   repeated crash/recovery cycles, with the torn-read audit staying
   at zero across every promotion.

Run:  PYTHONPATH=src python examples/failover.py
"""

from repro.objstore.failover import FailoverManager, FailurePlan
from repro.objstore.sharded import REPLY_FENCED, ShardedConfig, ShardedKV
from repro.objstore.txn import TxnManager
from repro.workloads.availability import FailoverMixConfig, run_failover_mix


def demo_crash_promote_recover() -> None:
    print("--- crash, promotion, recovery, re-sync ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=4, replication=2, n_objects=32, object_size=256)
    )
    fm = FailoverManager(kv)
    sim = kv.cluster.sim
    key = kv.keys()[0]
    idx = kv.key_index(key)
    primary, backup = kv.replicas_of(key)
    print(f"{key}: primary shard {primary}, backup shard {backup}")

    log = []

    def client():
        yield kv.put(0, key)
        log.append(f"t={sim.now:8.0f}  put #1 acked (healthy primary)")
        fm.crash(primary)
        log.append(f"t={sim.now:8.0f}  shard {primary} crashed; epoch={kv.epoch}")
        session = kv.reader_session(0)
        ok = yield from session.lookup(key, t_end=sim.now + 50_000.0)
        served = kv.current_primary(key)
        log.append(
            f"t={sim.now:8.0f}  read ok={ok} served by promoted shard {served}"
        )
        yield kv.put(0, key)
        log.append(
            f"t={sim.now:8.0f}  put #2 acked by promotee "
            f"(version {kv.stores[served].current_version(idx)})"
        )
        fm.recover(primary)
        log.append(f"t={sim.now:8.0f}  shard {primary} rejoining (re-sync)")

    sim.process(client())
    sim.run()
    for line in log:
        print(line)
    print(
        f"after re-sync: shard {primary} serving={kv.serving[primary]}, "
        f"version there {kv.stores[primary].current_version(idx)} "
        f"(caught up), primary is still shard {kv.current_primary(key)}"
    )
    print(f"failover events: {[(round(t), e, s) for t, e, s in fm.events]}")


def demo_fencing() -> None:
    print("\n--- fencing: a stale-epoch request is refused ---")
    kv = ShardedKV(
        ShardedConfig(n_shards=2, replication=2, n_objects=16, object_size=256)
    )
    FailoverManager(kv)
    key = kv.keys()[0]
    idx = kv.key_index(key)
    primary = kv.primary_of(key)
    kv.epoch += 2  # the view moved on; this client's epoch did not
    forged = (0).to_bytes(8, "little") + idx.to_bytes(8, "little") + bytes(
        kv.cfg.payload_len
    )
    replies = []

    def stale_client():
        reply = yield kv.client_rpc(0).call(
            kv.shards[primary].node_id, "shard_put", forged
        )
        replies.append(reply)

    kv.cluster.sim.process(stale_client())
    kv.cluster.sim.run()
    print(
        f"forged epoch-0 put against epoch-{kv.epoch} view -> "
        f"fenced={replies[0] == REPLY_FENCED}, "
        f"object untouched (version "
        f"{kv.stores[primary].current_version(idx)}), "
        f"fenced_rejects={kv.write_stats[primary].fenced_rejects}"
    )


def demo_availability_mix() -> None:
    print("\n--- the availability mix: 3 crash/recovery cycles, 4 shards ---")
    result = run_failover_mix(
        FailoverMixConfig(duration_ns=120_000.0, cycles=3, seed=3)
    )
    print(
        f"reads completed           : {result.reads_completed}\n"
        f"  ... while a shard down  : {result.reads_during_outage} "
        f"({result.outage_read_share:.0%})\n"
        f"writes completed          : {result.writes_completed} "
        f"({result.writes_during_outage} during outages)\n"
        f"txn commits               : {result.commits} "
        f"(+{result.crash_aborts} crash-forced aborts, retried)\n"
        f"crashes/recoveries        : {result.crashes}/{result.recoveries}, "
        f"{result.promotions} key promotions\n"
        f"in-flight failures        : {result.failed_rpcs} rpcs, "
        f"{result.failed_transfers} transfers\n"
        f"fenced / redirected       : {result.fenced_rejects} / "
        f"{result.crash_redirects}\n"
        f"undetected violations     : {result.undetected_violations} "
        f"(torn reads in txns: {result.torn_reads_observed})"
    )
    assert result.reads_during_outage > 0
    assert result.undetected_violations == 0


if __name__ == "__main__":
    demo_crash_promote_recover()
    demo_fencing()
    demo_availability_mix()

#!/usr/bin/env python3
"""A tour of the atomic-read design space (Table 1 + §3.2).

Runs the same contended workload under every concurrency-control
variant this library implements and contrasts their behavior:

* destination-side OCC with speculation  (LightSABRes, the paper),
* destination-side OCC without speculation (serialized version read),
* destination-side shared reader locks,
* source-side software OCC: FaRM per-cache-line versions and
  Pilaf-style checksums.

Run:  python examples/design_space_tour.py
"""

from repro import ClusterConfig, MicrobenchConfig, SabreMode, run_microbench
from repro.core.design_space import design_space_table

VARIANTS = (
    ("LightSABRes (speculative)", "sabre", SabreMode.SPECULATIVE),
    ("SABRe, no speculation", "sabre", SabreMode.NO_SPECULATION),
    ("SABRe, destination locks", "sabre", SabreMode.LOCKING),
    ("FaRM perCL versions (sw)", "percl_versions", SabreMode.SPECULATIVE),
    ("Pilaf checksums (sw)", "checksum", SabreMode.SPECULATIVE),
)


def main() -> None:
    print("Table 1 (regenerated):\n")
    print(design_space_table())
    print("\nSame workload, every mechanism (4 readers, 2 paced writers,"
          " 1 KB objects):\n")
    print(f"{'variant':>26s} {'mean ns':>8s} {'GB/s':>6s} "
          f"{'conflicts':>9s} {'torn':>5s}")
    for label, mechanism, mode in VARIANTS:
        cfg = MicrobenchConfig(
            mechanism=mechanism,
            object_size=1024,
            n_objects=64,
            readers=4,
            writers=2,
            writer_think_ns=1000.0,
            duration_ns=120_000.0,
            warmup_ns=15_000.0,
            cluster=ClusterConfig().with_sabre_mode(mode),
        )
        result = run_microbench(cfg)
        conflicts = result.sabre_aborts + result.software_conflicts
        print(
            f"{label:>26s} {result.mean_op_latency_ns:8.1f} "
            f"{result.goodput_gbps:6.2f} {conflicts:9d} "
            f"{result.undetected_violations:5d}"
        )
    print("\nNotes: locking never aborts but serializes against writers; "
          "checksums pay ~12\ncycles/byte; speculation removes the "
          "serialized first memory access (§3.3).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Conflict sensitivity study (the Fig. 8 scenario, scaled down).

16 reader threads on node 1 perform atomic remote reads of 100
LLC-resident objects on node 0 while a growing pool of writer threads
updates CREW-partitioned subsets in place.  Compares LightSABRes with
FaRM's per-cache-line versions as conflict probability rises, and
reports abort/conflict counts — plus the ground-truth audit proving no
torn read was ever consumed.

Run:  python examples/conflict_study.py
"""

from repro import MicrobenchConfig, run_microbench


def main() -> None:
    object_size = 1024
    print(f"{'writers':>7s} {'mechanism':>15s} {'GB/s':>7s} "
          f"{'mean ns':>8s} {'conflicts':>9s} {'torn reads':>10s}")
    for writers in (0, 4, 8, 16):
        for mechanism in ("sabre", "percl_versions"):
            cfg = MicrobenchConfig(
                mechanism=mechanism,
                object_size=object_size,
                n_objects=100,
                readers=16,
                writers=writers,
                writer_think_ns=1500.0,
                duration_ns=100_000.0,
                warmup_ns=15_000.0,
            )
            result = run_microbench(cfg)
            conflicts = result.sabre_aborts + result.software_conflicts
            print(
                f"{writers:7d} {mechanism:>15s} {result.goodput_gbps:7.2f} "
                f"{result.mean_op_latency_ns:8.1f} {conflicts:9d} "
                f"{result.undetected_violations:10d}"
            )
    print("\n'torn reads' is the ground-truth audit: every consumed read "
          "is checked against the\nwriter-stamped payload; a non-zero count "
          "would mean an atomicity violation escaped.")


if __name__ == "__main__":
    main()

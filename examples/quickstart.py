#!/usr/bin/env python3
"""Quickstart: atomic remote object reads with SABRes.

Builds the paper's two-node soNUMA cluster (Table 2 defaults), stores
an object on node 0, and reads it from node 1 three ways:

1. a plain one-sided remote read (no atomicity guarantee),
2. a SABRe (hardware-atomic bulk read),
3. a SABRe racing a writer — showing the abort/retry flow.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ObjectStore, RawLayout, stamped_payload, torn_words


def main() -> None:
    cluster = Cluster()
    owner, client = cluster.node(0), cluster.node(1)

    # --- 1. put an object in node 0's memory -------------------------
    store = ObjectStore(owner.phys, RawLayout())
    payload = stamped_payload(version=0, length=1000)
    store.create(obj_id=1, data=payload)
    handle = store.handle(1)
    print(f"object 1: {handle.wire_size} B at {handle.base_addr:#x} "
          f"({handle.num_blocks} cache blocks)")

    # --- 2. read it remotely, both ways -------------------------------
    buf = client.alloc_buffer(handle.wire_size)

    def reader():
        read = yield client.remote_read(0, handle.base_addr, handle.wire_size, buf)
        print(f"remote read : {read.timings.end_to_end_ns:6.1f} ns "
              "(no atomicity guarantee)")

        sabre = yield client.sabre_read(0, handle.base_addr, handle.wire_size, buf)
        print(f"SABRe       : {sabre.timings.end_to_end_ns:6.1f} ns "
              f"(atomic: {sabre.success})")

    cluster.sim.process(reader())
    cluster.run()

    # --- 3. race a writer: the SABRe aborts, software retries --------
    def racing_writer():
        steps, version = store.update_steps(1, stamped_payload(2, 1000))
        for addr, chunk in steps:
            owner.chip.write_block(0, addr, chunk)

    # Commit the update mid-transfer (the SABRe's vulnerable window).
    cluster.sim.call_later(cluster.sim.now + 100.0, racing_writer)

    def retrying_reader():
        attempts = 0
        while True:
            attempts += 1
            result = yield client.sabre_read(
                0, handle.base_addr, handle.wire_size, buf
            )
            if result.success:
                break
        raw = client.read_local(buf, handle.wire_size)
        data = RawLayout().unpack(raw, 1000).data
        torn, versions = torn_words(data)
        print(f"racing SABRe: success after {attempts} attempt(s); "
              f"torn={torn}; payload version(s)={versions}")

    cluster.sim.process(retrying_reader())
    cluster.run()

    aborts = owner.counters.get("sabre_aborts")
    print(f"destination counters: {aborts} abort(s), "
          f"{owner.counters.get('sabre_successes')} success(es)")


if __name__ == "__main__":
    main()

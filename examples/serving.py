#!/usr/bin/env python3
"""Serving the simulated cluster like a product.

Walks the serving stack end to end:

1. the **time bridge** — replay a synthesized open-loop arrival trace
   through the simulated cluster in virtual time (deterministic: same
   seed + trace => byte-identical metrics),
2. a **live gateway** — boot ``repro-serve`` in-process on an
   ephemeral port and drive it with the wall-clock open-loop client,
3. a tiny **saturation sweep** — step offered QPS until the
   achieved/offered ratio collapses, locating the cluster's knee.

Run:  PYTHONPATH=src python examples/serving.py
"""

import asyncio

from repro.loadgen.client import run_open_loop
from repro.loadgen.sweep import SweepConfig, run_sweep
from repro.loadgen.trace import TraceConfig, build_trace
from repro.serve.bridge import SimBridge
from repro.serve.gateway import Gateway
from repro.serve.metrics import parse_samples
from repro.serve.settings import ServeSettings


def demo_virtual_replay() -> None:
    print("--- virtual-time replay (deterministic) ---")
    trace = build_trace(
        TraceConfig(qps=2_000_000.0, n_ops=2000, workload="B",
                    txn_fraction=0.05, seed=7)
    )
    rows = []
    for run in (1, 2):
        bridge = SimBridge(ServeSettings(seed=7))
        bridge.warm()
        report = bridge.replay(trace)
        rows.append(bridge.metrics_snapshot())
        print(
            f"run {run}: {report.n_ok}/{report.n_ops} ok, "
            f"p50 {report.p50_ns:,.0f} ns, p99 {report.p99_ns:,.0f} ns, "
            f"achieved {report.achieved_qps:,.0f} req/s"
        )
    print(f"metrics snapshots byte-identical: {rows[0] == rows[1]}")


def demo_live_gateway() -> None:
    print("\n--- live gateway + wall-clock open-loop client ---")

    async def scenario():
        gw = Gateway(ServeSettings.from_env(environ={}, port=0))
        await gw.start()
        while not gw.bridge.ready:
            await asyncio.sleep(0.01)
        trace = build_trace(
            TraceConfig(qps=2000.0, n_ops=200, workload="B", seed=4)
        )
        report = await run_open_loop(trace, gw.settings.host, gw.port)
        snapshot = gw.bridge.metrics_snapshot()
        await gw.drain()
        return report, parse_samples(snapshot)

    report, samples = asyncio.run(scenario())
    print(
        f"{report.n_ok}/{report.n_ops} ok over {report.duration_s:.2f} s "
        f"wall, p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms"
    )
    torn = {
        k: v for k, v in samples.items()
        if k.startswith("repro_shard_undetected_violations")
    }
    print(f"undetected torn reads across shards: {sum(torn.values()):.0f}")


def demo_saturation_sweep() -> None:
    print("\n--- saturation sweep (virtual time, tiny) ---")
    result = run_sweep(
        SweepConfig(
            qps_start=8_000_000.0,
            qps_factor=4.0,
            max_steps=3,
            ops_per_step=400,
            workload="C",
            seed=6,
        )
    )
    for step in result.steps:
        print(
            f"offered {step['offered_qps']:>12,.0f} req/s -> achieved "
            f"{step['achieved_qps']:>12,.0f} (ratio {step['achieved_ratio']:.2f})"
        )
    print(
        f"peak {result.peak_qps:,.0f} req/s, knee {result.knee_qps:,.0f} "
        f"offered ({'collapsed' if result.collapsed else 'never collapsed'})"
    )


if __name__ == "__main__":
    demo_virtual_replay()
    demo_live_gateway()
    demo_saturation_sweep()

"""Ablation (DG1, §4.1): stream-buffer depth vs single-SABRe latency.

The depth bounds how many loads can be in flight during the window of
vulnerability.  Little's law at the 20 GBps per-R2P2 target and ~90 ns
memory latency yields ~28 outstanding blocks — hence the paper's depth
of 32.  Shallow buffers stall the unroll and inflate latency of large
SABRes; depth beyond the bandwidth-delay product buys nothing.
"""

import dataclasses

from conftest import bench_scale, run_once, show

from repro.common.config import ClusterConfig
from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench

DEPTHS = (2, 8, 32, 128)


def _latency_for_depth(depth: int, scale: float) -> float:
    cfg = ClusterConfig()
    sabre = dataclasses.replace(cfg.node.sabre, stream_buffer_depth=depth)
    node = dataclasses.replace(cfg.node, sabre=sabre)
    cfg = dataclasses.replace(cfg, node=node)
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=8192,
            n_objects=512,
            readers=1,
            duration_ns=scaled_duration(60_000.0, scale),
            warmup_ns=5_000.0,
            cluster=cfg,
        )
    )
    return result.mean_transfer_latency_ns


def _sweep(scale: float):
    return [
        {"depth": d, "sabre_8kb_latency_ns": _latency_for_depth(d, scale)}
        for d in DEPTHS
    ]


def test_stream_buffer_depth_sweep(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: stream buffer depth vs 8 KB SABRe latency",
        format_table(("depth", "sabre_8kb_latency_ns"), rows),
    )
    lat = {r["depth"]: r["sabre_8kb_latency_ns"] for r in rows}
    # Starving the window hurts; the paper's depth is on the plateau.
    assert lat[2] > 1.08 * lat[32]
    assert lat[8] > lat[32]
    # Beyond the bandwidth-delay product there is nothing left to win.
    assert abs(lat[128] - lat[32]) < 0.05 * lat[32]
    benchmark.extra_info["latency_by_depth"] = {
        d: round(v, 1) for d, v in lat.items()
    }

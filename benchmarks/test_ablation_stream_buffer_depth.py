"""Ablation (DG1, §4.1): stream-buffer depth vs single-SABRe latency.

The depth bounds how many loads can be in flight during the window of
vulnerability.  Little's law at the 20 GBps per-R2P2 target and ~90 ns
memory latency yields ~28 outstanding blocks — hence the paper's depth
of 32.  Shallow buffers stall the unroll and inflate latency of large
SABRes; depth beyond the bandwidth-delay product buys nothing.

Runs the registered ``ablation_stream_buffer_depth`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table


def test_stream_buffer_depth_sweep(benchmark, scale):
    rows = run_once(
        benchmark, run_ablation, "ablation_stream_buffer_depth", bench_scale()
    )
    show(
        "Ablation: stream buffer depth vs 8 KB SABRe latency",
        format_table(("depth", "sabre_8kb_latency_ns"), rows),
    )
    lat = {r["depth"]: r["sabre_8kb_latency_ns"] for r in rows}
    # Starving the window hurts; the paper's depth is on the plateau.
    assert lat[2] > 1.08 * lat[32]
    assert lat[8] > lat[32]
    # Beyond the bandwidth-delay product there is nothing left to win.
    assert abs(lat[128] - lat[32]) < 0.05 * lat[32]
    benchmark.extra_info["latency_by_depth"] = {
        d: round(v, 1) for d, v in lat.items()
    }

"""Ablation (§3.2): destination-side locking vs optimistic SABRes.

For read-dominated workloads OCC wins: locking serializes readers
against writers (the R2P2 spins on write-locked objects) while
optimistic SABRes proceed and rarely retry.  Locking's consolation:
it never aborts.
"""

from conftest import bench_scale, run_once, show

from repro.common.config import ClusterConfig, SabreMode
from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def _run(mode: SabreMode, scale: float):
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=1024,
            n_objects=64,
            readers=8,
            writers=2,
            writer_think_ns=1000.0,
            duration_ns=scaled_duration(100_000.0, scale),
            warmup_ns=12_000.0,
            cluster=ClusterConfig().with_sabre_mode(mode),
        )
    )
    return {
        "mode": mode.value,
        "goodput_gbps": result.goodput_gbps,
        "mean_latency_ns": result.mean_op_latency_ns,
        "aborts": result.sabre_aborts,
        "lock_waits": result.destination_counters.get("lock_waits", 0),
        "torn_reads": result.undetected_violations,
    }


def _sweep(scale: float):
    return [
        _run(mode, scale)
        for mode in (SabreMode.SPECULATIVE, SabreMode.LOCKING)
    ]


def test_locking_vs_occ(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: destination-side OCC vs locking (8 readers, 2 writers)",
        format_table(
            ("mode", "goodput_gbps", "mean_latency_ns", "aborts",
             "lock_waits", "torn_reads"),
            rows,
        ),
    )
    occ, locking = rows[0], rows[1]
    assert occ["goodput_gbps"] >= locking["goodput_gbps"]
    assert locking["aborts"] == 0  # conflict prevention, not detection
    assert occ["aborts"] > 0
    assert locking["lock_waits"] > 0
    assert occ["torn_reads"] == locking["torn_reads"] == 0
    benchmark.extra_info["occ_over_locking"] = round(
        occ["goodput_gbps"] / max(locking["goodput_gbps"], 1e-9), 3
    )

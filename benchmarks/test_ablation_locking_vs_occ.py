"""Ablation (§3.2): destination-side locking vs optimistic SABRes.

For read-dominated workloads OCC wins: locking serializes readers
against writers (the R2P2 spins on write-locked objects) while
optimistic SABRes proceed and rarely retry.  Locking's consolation:
it never aborts.

Runs the registered ``ablation_locking_vs_occ`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table


def test_locking_vs_occ(benchmark, scale):
    rows = run_once(benchmark, run_ablation, "ablation_locking_vs_occ", bench_scale())
    show(
        "Ablation: destination-side OCC vs locking (8 readers, 2 writers)",
        format_table(
            ("mode", "goodput_gbps", "mean_latency_ns", "aborts",
             "lock_waits", "torn_reads"),
            rows,
        ),
    )
    occ, locking = rows[0], rows[1]
    assert occ["goodput_gbps"] >= locking["goodput_gbps"]
    assert locking["aborts"] == 0  # conflict prevention, not detection
    assert occ["aborts"] > 0
    assert locking["lock_waits"] > 0
    assert occ["torn_reads"] == locking["torn_reads"] == 0
    benchmark.extra_info["occ_over_locking"] = round(
        occ["goodput_gbps"] / max(locking["goodput_gbps"], 1e-9), 3
    )

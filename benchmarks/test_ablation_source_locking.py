"""Ablation (Table 1 / §2.1): source-side locking (DrTM cell) vs
source-side OCC (FaRM cell) vs destination-side hardware (SABRes).

Source locking acquires the object's version-word lock with a remote
CAS and releases it with a remote write: two extra network round trips
per read, the drawback that motivates OCC — and, once software checks
become the bottleneck too, hardware SABRes.

Runs the registered ``ablation_source_locking`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table

MECHANISMS = ("sabre", "percl_versions", "drtm_lock")


def test_source_locking_vs_alternatives(benchmark, scale):
    rows = run_once(benchmark, run_ablation, "ablation_source_locking", bench_scale())
    show(
        "Ablation: Table 1 cells on one workload (512 B, 4 readers, 2 writers)",
        format_table(
            ("mechanism", "mean_latency_ns", "goodput_gbps", "retries",
             "torn_reads"),
            rows,
        ),
    )
    by_mech = {r["mechanism"]: r for r in rows}
    sabre = by_mech["sabre"]["mean_latency_ns"]
    percl = by_mech["percl_versions"]["mean_latency_ns"]
    drtm = by_mech["drtm_lock"]["mean_latency_ns"]
    # Destination hardware < source OCC < source locking.
    assert sabre < percl < drtm
    # The two extra round trips roughly double-to-triple the latency.
    assert drtm > 1.8 * sabre
    # Everyone is safe; only the costs differ.
    for row in rows:
        assert row["torn_reads"] == 0
    benchmark.extra_info["latency_ladder_ns"] = {
        m: round(by_mech[m]["mean_latency_ns"], 1) for m in MECHANISMS
    }

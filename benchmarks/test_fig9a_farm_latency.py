"""Figure 9a: FaRM KV store end-to-end latency breakdown.

Paper claims: LightSABRes cut atomic remote object read latency by
~35 % (128 B) to ~52 % (8 KB); the stripping component disappears, the
framework component shrinks (zero-copy, smaller instruction
footprint), the application component grows (LLC- vs L1-resident).
"""

from conftest import run_once, show

from repro.harness.fig9 import run_fig9a
from repro.harness.report import format_table


def test_fig9a_farm_latency(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig9a, scale=scale)
    show("Fig. 9a: FaRM lookup latency breakdown (ns)", format_table(headers, rows))
    by = {(r["object_size"], r["build"]): r for r in rows}

    for size in (128, 8192):
        sabre, percl = by[(size, "sabre")], by[(size, "percl")]
        assert sabre["stripping_ns"] == 0.0
        assert sabre["framework_ns"] < percl["framework_ns"]
        assert sabre["application_ns"] > percl["application_ns"]

    small = by[(128, "percl")]["total_ns"] / by[(128, "sabre")]["total_ns"] - 1
    large = by[(8192, "percl")]["total_ns"] / by[(8192, "sabre")]["total_ns"] - 1
    assert 0.2 <= small <= 0.5  # paper: 35 %
    assert 0.35 <= large <= 0.7  # paper: 52 %
    assert large > small

    benchmark.extra_info["improvement_128B"] = round(small, 3)
    benchmark.extra_info["improvement_8KB"] = round(large, 3)
    benchmark.extra_info["paper_bands"] = "35% (128B) -> 52% (8KB)"

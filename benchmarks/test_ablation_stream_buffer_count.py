"""Ablation (DG2, §4.1): stream-buffer count vs small-SABRe concurrency.

The number of stream buffers caps concurrent SABRes per R2P2.  With
many threads issuing small SABRes, too few buffers cause ATT
backpressure and throughput collapse; the paper provisions 16.

Runs the registered ``ablation_stream_buffer_count`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table


def test_stream_buffer_count_sweep(benchmark, scale):
    rows = run_once(
        benchmark, run_ablation, "ablation_stream_buffer_count", bench_scale()
    )
    show(
        "Ablation: stream buffer count vs 128 B SABRe throughput",
        format_table(
            ("stream_buffers", "small_sabre_gbps", "att_backpressure_events"),
            rows,
        ),
    )
    by_count = {r["stream_buffers"]: r for r in rows}
    assert (
        by_count[16]["small_sabre_gbps"] > 1.2 * by_count[1]["small_sabre_gbps"]
    )
    assert by_count[1]["att_backpressure_events"] > 0
    benchmark.extra_info["gbps_by_count"] = {
        r["stream_buffers"]: round(r["small_sabre_gbps"], 2) for r in rows
    }

"""Ablation (DG2, §4.1): stream-buffer count vs small-SABRe concurrency.

The number of stream buffers caps concurrent SABRes per R2P2.  With
many threads issuing small SABRes, too few buffers cause ATT
backpressure and throughput collapse; the paper provisions 16.
"""

import dataclasses

from conftest import bench_scale, run_once, show

from repro.common.config import ClusterConfig
from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench

COUNTS = (1, 4, 16)


def _throughput_for_count(count: int, scale: float):
    cfg = ClusterConfig()
    sabre = dataclasses.replace(cfg.node.sabre, stream_buffers=count)
    node = dataclasses.replace(cfg.node, sabre=sabre)
    cfg = dataclasses.replace(cfg, node=node)
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=128,
            n_objects=256,
            readers=16,
            async_window=8,
            duration_ns=scaled_duration(60_000.0, scale),
            warmup_ns=8_000.0,
            cluster=cfg,
        )
    )
    return result.goodput_gbps, result.destination_counters.get(
        "att_backpressure", 0
    )


def _sweep(scale: float):
    rows = []
    for count in COUNTS:
        gbps, backpressure = _throughput_for_count(count, scale)
        rows.append(
            {
                "stream_buffers": count,
                "small_sabre_gbps": gbps,
                "att_backpressure_events": backpressure,
            }
        )
    return rows


def test_stream_buffer_count_sweep(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: stream buffer count vs 128 B SABRe throughput",
        format_table(
            ("stream_buffers", "small_sabre_gbps", "att_backpressure_events"),
            rows,
        ),
    )
    by_count = {r["stream_buffers"]: r for r in rows}
    assert (
        by_count[16]["small_sabre_gbps"] > 1.2 * by_count[1]["small_sabre_gbps"]
    )
    assert by_count[1]["att_backpressure_events"] > 0
    benchmark.extra_info["gbps_by_count"] = {
        r["stream_buffers"]: round(r["small_sabre_gbps"], 2) for r in rows
    }

"""Figure 9b: FaRM KV store throughput, 15 reader threads.

Paper claim: LightSABRes deliver 30-60 % higher application throughput
than the per-cache-line-versions baseline, across 128 B-8 KB objects.
"""

from conftest import run_once, show

from repro.harness.fig9 import run_fig9b
from repro.harness.report import format_table

SIZES = (128, 512, 1024, 4096, 8192)


def test_fig9b_farm_throughput(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig9b, scale=scale, sizes=SIZES)
    show("Fig. 9b: FaRM KV throughput (GB/s)", format_table(headers, rows))
    for row in rows:
        assert 0.15 <= row["improvement"] <= 0.9  # paper: 0.30-0.60
    improvements = {r["object_size"]: round(r["improvement"], 3) for r in rows}
    benchmark.extra_info["improvement_by_size"] = improvements
    benchmark.extra_info["paper_bands"] = "+30-60%"

"""YCSB-A shard scaling on the rack-scale service.

Not a paper figure — the scale-out extension of §7.3's FaRM scenario:
as shards (and client nodes) grow 1 -> 8, read throughput under the
SABRe mechanism should grow with the rack while the ground-truth
torn-read audit stays clean despite the 50 % write mix.
"""

from conftest import run_once, show

from repro.experiments import SweepRunner
from repro.workloads.ycsb import YCSB_SHARD_SCALING_SPEC


def run_scaling(scale):
    return SweepRunner(YCSB_SHARD_SCALING_SPEC, scale=scale).run()


def test_ycsb_shard_scaling(benchmark, scale):
    result = run_once(benchmark, run_scaling, scale)
    show("YCSB-A shard scaling (SABRe reads)", result.table())
    rows = {row["shards"]: row for row in result.rows}
    for row in result.rows:
        assert row["undetected_violations"] == 0
    # Throughput grows with the rack (loose bound: tiny windows are
    # noisy, but 8 shards must comfortably beat 1).
    assert rows[8]["read_gbps"] > 2.0 * rows[1]["read_gbps"]
    assert rows[2]["read_gbps"] > rows[1]["read_gbps"]
    benchmark.extra_info["read_gbps_by_shards"] = {
        shards: round(row["read_gbps"], 3) for shards, row in rows.items()
    }
    benchmark.extra_info["violations_total"] = 0

"""Figure 7b: peak throughput, 16 threads issuing async operations.

Paper claims: remote reads and LightSABRes have identical throughput
curves — SABRe state at the R2P2s does not cost bandwidth — and both
reach the fabric-limited peak for large objects.
"""

from conftest import run_once, show

from repro.harness.fig7 import run_fig7b
from repro.harness.report import format_table


def test_fig7b_throughput(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig7b, scale=scale)
    show("Fig. 7b: async throughput (GB/s)", format_table(headers, rows))
    for row in rows:
        assert row["sabre_gbps"] >= 0.8 * row["remote_read_gbps"]
        assert row["sabre_gbps"] <= 1.2 * row["remote_read_gbps"]
    gbps = [r["sabre_gbps"] for r in rows]
    assert gbps[-1] > gbps[0]  # grows with object size
    assert gbps[-1] > 40.0  # approaches the fabric limit
    assert gbps[-1] <= 100.0
    benchmark.extra_info["peak_sabre_gbps"] = round(gbps[-1], 1)
    benchmark.extra_info["paper_bands"] = "identical curves; ~75 GB/s plateau at 8KB"

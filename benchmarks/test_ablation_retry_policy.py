"""Ablation (§5.1): hardware retry vs software-exposed aborts.

The paper rejects transparent hardware retry: it raises R2P2 occupancy
and can only ever be attempted before any reply has left (the
request-reply invariant).  This bench quantifies both policies under
contention: hardware retry salvages some conflicts (fewer CQ failures)
but cannot eliminate retries and keeps the R2P2 busy longer.

Runs the registered ``ablation_retry_policy`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table


def test_retry_policy(benchmark, scale):
    rows = run_once(benchmark, run_ablation, "ablation_retry_policy", bench_scale())
    show(
        "Ablation: abort exposure policy under contention",
        format_table(
            ("policy", "goodput_gbps", "cq_failures", "hw_retries", "torn_reads"),
            rows,
        ),
    )
    software, hardware = rows[0], rows[1]
    assert hardware["hw_retries"] > 0
    assert software["hw_retries"] == 0
    # Retrying in hardware hides some failures from software...
    assert hardware["cq_failures"] <= software["cq_failures"]
    # ...and is always safe.
    assert software["torn_reads"] == hardware["torn_reads"] == 0
    benchmark.extra_info["hw_retries"] = hardware["hw_retries"]
    benchmark.extra_info["cq_failures_sw_vs_hw"] = (
        software["cq_failures"],
        hardware["cq_failures"],
    )

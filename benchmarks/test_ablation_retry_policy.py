"""Ablation (§5.1): hardware retry vs software-exposed aborts.

The paper rejects transparent hardware retry: it raises R2P2 occupancy
and can only ever be attempted before any reply has left (the
request-reply invariant).  This bench quantifies both policies under
contention: hardware retry salvages some conflicts (fewer CQ failures)
but cannot eliminate retries and keeps the R2P2 busy longer.
"""

import dataclasses

from conftest import bench_scale, run_once, show

from repro.common.config import ClusterConfig
from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench


def _run(hardware_retry: bool, scale: float):
    cfg = ClusterConfig()
    sabre = dataclasses.replace(cfg.node.sabre, hardware_retry=hardware_retry)
    node = dataclasses.replace(cfg.node, sabre=sabre)
    cfg = dataclasses.replace(cfg, node=node)
    result = run_microbench(
        MicrobenchConfig(
            mechanism="sabre",
            object_size=512,
            n_objects=24,
            readers=8,
            writers=6,
            duration_ns=scaled_duration(100_000.0, scale),
            warmup_ns=12_000.0,
            cluster=cfg,
        )
    )
    return {
        "policy": "hardware_retry" if hardware_retry else "software_abort",
        "goodput_gbps": result.goodput_gbps,
        "cq_failures": result.sabre_aborts,
        "hw_retries": result.destination_counters.get("hardware_retries", 0),
        "torn_reads": result.undetected_violations,
    }


def _sweep(scale: float):
    return [_run(False, scale), _run(True, scale)]


def test_retry_policy(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: abort exposure policy under contention",
        format_table(
            ("policy", "goodput_gbps", "cq_failures", "hw_retries", "torn_reads"),
            rows,
        ),
    )
    software, hardware = rows[0], rows[1]
    assert hardware["hw_retries"] > 0
    assert software["hw_retries"] == 0
    # Retrying in hardware hides some failures from software...
    assert hardware["cq_failures"] <= software["cq_failures"]
    # ...and is always safe.
    assert software["torn_reads"] == hardware["torn_reads"] == 0
    benchmark.extra_info["hw_retries"] = hardware["hw_retries"]
    benchmark.extra_info["cq_failures_sw_vs_hw"] = (
        software["cq_failures"],
        hardware["cq_failures"],
    )

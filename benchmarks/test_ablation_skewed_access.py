"""Ablation: skewed (Zipfian) key popularity.

The paper's microbenchmark accesses objects uniformly; real online
services (its motivating workload) are heavily skewed.  Hot keys
concentrate reader-writer conflicts, raising abort/retry rates — this
bench shows the SABRe advantage survives the hostile regime and that
atomicity still holds.

Runs the registered ``ablation_skewed_access`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table

THETAS = (0.0, 0.99)


def test_skewed_access(benchmark, scale):
    rows = run_once(benchmark, run_ablation, "ablation_skewed_access", bench_scale())
    show(
        "Ablation: uniform vs Zipfian key popularity (1 KB, 8 writers)",
        format_table(
            ("zipf_theta", "mechanism", "goodput_gbps", "conflicts", "ops",
             "torn_reads"),
            rows,
        ),
    )
    by = {(r["zipf_theta"], r["mechanism"]): r for r in rows}
    # Skew concentrates conflicts...
    assert (
        by[(0.99, "sabre")]["conflicts"] / max(by[(0.99, "sabre")]["ops"], 1)
        > by[(0.0, "sabre")]["conflicts"] / max(by[(0.0, "sabre")]["ops"], 1)
    )
    # ...but SABRes stay ahead of software atomicity and stay safe.
    for theta in THETAS:
        assert (
            by[(theta, "sabre")]["goodput_gbps"]
            > by[(theta, "percl_versions")]["goodput_gbps"]
        )
    for row in rows:
        assert row["torn_reads"] == 0
    benchmark.extra_info["sabre_gbps_by_theta"] = {
        theta: round(by[(theta, "sabre")]["goodput_gbps"], 2) for theta in THETAS
    }

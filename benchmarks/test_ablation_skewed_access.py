"""Ablation: skewed (Zipfian) key popularity.

The paper's microbenchmark accesses objects uniformly; real online
services (its motivating workload) are heavily skewed.  Hot keys
concentrate reader-writer conflicts, raising abort/retry rates — this
bench shows the SABRe advantage survives the hostile regime and that
atomicity still holds.
"""

from conftest import bench_scale, run_once, show

from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench

THETAS = (0.0, 0.99)


def _run(mechanism: str, theta: float, scale: float):
    result = run_microbench(
        MicrobenchConfig(
            mechanism=mechanism,
            object_size=1024,
            n_objects=100,
            readers=16,
            writers=8,
            writer_think_ns=1500.0,
            zipf_theta=theta,
            duration_ns=scaled_duration(100_000.0, scale),
            warmup_ns=12_000.0,
            seed=41,
        )
    )
    return {
        "zipf_theta": theta,
        "mechanism": mechanism,
        "goodput_gbps": result.goodput_gbps,
        "conflicts": result.sabre_aborts + result.software_conflicts,
        "ops": result.ops_completed,
        "torn_reads": result.undetected_violations,
    }


def _sweep(scale: float):
    rows = []
    for theta in THETAS:
        for mechanism in ("sabre", "percl_versions"):
            rows.append(_run(mechanism, theta, scale))
    return rows


def test_skewed_access(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: uniform vs Zipfian key popularity (1 KB, 8 writers)",
        format_table(
            ("zipf_theta", "mechanism", "goodput_gbps", "conflicts", "ops",
             "torn_reads"),
            rows,
        ),
    )
    by = {(r["zipf_theta"], r["mechanism"]): r for r in rows}
    # Skew concentrates conflicts...
    assert (
        by[(0.99, "sabre")]["conflicts"] / max(by[(0.99, "sabre")]["ops"], 1)
        > by[(0.0, "sabre")]["conflicts"] / max(by[(0.0, "sabre")]["ops"], 1)
    )
    # ...but SABRes stay ahead of software atomicity and stay safe.
    for theta in THETAS:
        assert (
            by[(theta, "sabre")]["goodput_gbps"]
            > by[(theta, "percl_versions")]["goodput_gbps"]
        )
    for row in rows:
        assert row["torn_reads"] == 0
    benchmark.extra_info["sabre_gbps_by_theta"] = {
        theta: round(by[(theta, "sabre")]["goodput_gbps"], 2) for theta in THETAS
    }

"""Figure 1: E2E latency breakdown of per-cache-line-version atomic
reads on FaRM over soNUMA.

Paper claim: version stripping is ~10 % of end-to-end latency at 128 B
and grows nearly linearly, reaching about half the latency at 8 KB.
"""

from conftest import run_once, show

from repro.harness.fig1 import run_fig1
from repro.harness.report import format_table


def test_fig1_software_overhead(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig1, scale=scale)
    show("Fig. 1: FaRM perCL-version read latency breakdown", format_table(headers, rows))
    by_size = {r["object_size"]: r for r in rows}
    small, large = by_size[128], by_size[8192]
    # Shares grow monotonically from ~10 % to ~half.
    assert small["stripping_share"] < 0.25
    assert large["stripping_share"] > 0.40
    shares = [r["stripping_share"] for r in rows]
    assert shares == sorted(shares)
    benchmark.extra_info["stripping_share_128B"] = round(small["stripping_share"], 3)
    benchmark.extra_info["stripping_share_8KB"] = round(large["stripping_share"], 3)
    benchmark.extra_info["paper_bands"] = "10% at 128B -> ~50% at 8KB"

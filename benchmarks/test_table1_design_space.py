"""Table 1: the design space for one-sided atomic object reads."""

from conftest import run_once, show

from repro.harness.tables import table1


def test_table1_design_space(benchmark):
    table = run_once(benchmark, table1)
    show("Table 1: design space for one-sided atomic object reads", table)
    assert "SABRes" in table
    benchmark.extra_info["destination_side_systems"] = "SABRes"

"""Figure 8: application throughput under growing conflict rates.

Paper claims: throughput degrades as writers are added; LightSABRes
beat per-cache-line versions everywhere; the advantage grows with
object size (15-97 % across 128 B-8 KB).
"""

from conftest import run_once, show

from repro.harness.fig8 import run_fig8
from repro.harness.report import format_table


def test_fig8_conflicts(benchmark, scale):
    headers, rows = run_once(
        benchmark, run_fig8, scale=scale, writer_counts=(0, 8, 16)
    )
    show("Fig. 8: throughput vs writer threads (GB/s)", format_table(headers, rows))
    by_key = {(r["object_size"], r["writers"]): r for r in rows}

    for row in rows:
        assert row["sabre_advantage"] > 0  # SABRes always ahead

    # The advantage grows with object size (at zero writers).
    adv = [by_key[(s, 0)]["sabre_advantage"] for s in (128, 1024, 8192)]
    assert adv[0] < adv[1] < adv[2]

    # Conflicts appear and throughput degrades as writers are added.
    assert by_key[(1024, 16)]["sabre_gbps"] < by_key[(1024, 0)]["sabre_gbps"]
    assert by_key[(1024, 16)]["sabre_aborts"] > 0
    assert by_key[(1024, 16)]["percl_conflicts"] > 0

    benchmark.extra_info["advantage_by_size_no_writers"] = {
        s: round(by_key[(s, 0)]["sabre_advantage"], 3) for s in (128, 1024, 8192)
    }
    benchmark.extra_info["paper_bands"] = "15% (128B) -> 87-97% (8KB)"

"""Table 2: system parameters for the simulated rack."""

from conftest import run_once, show

from repro.harness.report import format_table
from repro.harness.tables import table2_rows


def test_table2_parameters(benchmark):
    headers, rows = run_once(benchmark, table2_rows)
    show("Table 2: system parameters", format_table(headers, rows))
    components = {r["component"] for r in rows}
    assert "LightSABRes" in components
    sram = next(r for r in rows if r["component"] == "LightSABRes")
    benchmark.extra_info["lightsabres_provisioning"] = sram["parameters"]

"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
reduced (but meaningful) measurement scale, prints the same rows the
paper reports, and attaches the key numbers as pytest-benchmark
``extra_info`` so they land in the JSON output.

Set ``SABRES_BENCH_SCALE`` (default 0.25) to trade time for precision;
1.0 reproduces the full-size runs.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    return float(os.environ.get("SABRES_BENCH_SCALE", "0.25"))


@pytest.fixture
def scale() -> float:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(title: str, table: str) -> None:
    print(f"\n=== {title} ===")
    print(table)

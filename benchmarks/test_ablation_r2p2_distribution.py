"""Ablation (§5.1): pinning each SABRe to a single R2P2.

The paper pins SABRes to one R2P2 and accepts a small latency penalty
for large transfers rather than striping a SABRe across R2P2s (which
would need multi-R2P2 atomicity coordination).  This bench quantifies
the cost of that choice: the pinned SABRe vs the per-block-striped
remote read (a lower bound on any striped-SABRe design — it does the
same data movement with zero atomicity work).

Runs the registered ``ablation_r2p2_distribution`` experiment spec
(which reuses the fig7a point function on a 3-size grid).
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table


def test_r2p2_distribution(benchmark, scale):
    rows = run_once(
        benchmark, run_ablation, "ablation_r2p2_distribution", bench_scale()
    )
    show(
        "Ablation: single-R2P2 pinning vs striped lower bound",
        format_table(
            ("object_size", "pinned_sabre_ns", "striped_lower_bound_ns",
             "pinning_cost"),
            rows,
        ),
    )
    # The pinning cost is small at every size (paper: a few percent,
    # visible only above 2 KB) — the design choice is cheap.
    for row in rows:
        assert -0.05 <= row["pinning_cost"] < 0.20
    benchmark.extra_info["pinning_cost_by_size"] = {
        r["object_size"]: round(r["pinning_cost"], 3) for r in rows
    }

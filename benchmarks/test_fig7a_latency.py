"""Figure 7a: microbenchmark end-to-end transfer latency.

Paper claims: (i) single-block transfers are identical across remote
reads and both SABRe variants; (ii) the no-speculation SABRe pays the
serialized version read (up to ~40 % for two-block objects); (iii)
LightSABRes match remote reads, with a small single-R2P2-pinning gap
above 2 KB.
"""

from conftest import run_once, show

from repro.harness.fig7 import run_fig7a
from repro.harness.report import format_table


def test_fig7a_latency(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig7a, scale=scale)
    show("Fig. 7a: one-sided operation latency (ns)", format_table(headers, rows))
    by_size = {r["object_size"]: r for r in rows}

    single = by_size[64]
    assert abs(single["sabre_ns"] - single["remote_read_ns"]) < 0.1 * single["remote_read_ns"]

    two_block = by_size[128]
    nospec_penalty = two_block["sabre_no_spec_ns"] / two_block["sabre_ns"] - 1.0
    assert 0.2 <= nospec_penalty <= 0.6  # paper: up to ~40 %

    big = by_size[8192]
    pinning_gap = big["sabre_ns"] / big["remote_read_ns"] - 1.0
    assert 0.0 <= pinning_gap <= 0.2  # paper: small gap from pinning

    benchmark.extra_info["nospec_penalty_128B"] = round(nospec_penalty, 3)
    benchmark.extra_info["pinning_gap_8KB"] = round(pinning_gap, 3)
    benchmark.extra_info["paper_bands"] = "+40% no-spec at 2 blocks; small pinning gap >2KB"

"""Ablation (§2.1): the software atomicity mechanisms SABRes replace.

Pilaf's checksums cost ~a dozen CPU cycles per byte; FaRM's
per-cache-line versions are far cheaper but still scale with object
size and break zero-copy.  LightSABRes remove the check entirely.

Runs the registered ``ablation_software_mechanisms`` experiment spec.
"""

from conftest import bench_scale, run_once, show

from repro.experiments.ablations import run_ablation
from repro.harness.report import format_table

MECHANISMS = ("sabre", "percl_versions", "checksum")


def test_software_mechanism_ladder(benchmark, scale):
    rows = run_once(
        benchmark, run_ablation, "ablation_software_mechanisms", bench_scale()
    )
    show(
        "Ablation: atomicity mechanism cost ladder (2 KB objects)",
        format_table(("mechanism", "mean_latency_ns", "goodput_gbps"), rows),
    )
    by_mech = {r["mechanism"]: r for r in rows}
    sabre = by_mech["sabre"]["mean_latency_ns"]
    percl = by_mech["percl_versions"]["mean_latency_ns"]
    checksum = by_mech["checksum"]["mean_latency_ns"]
    assert sabre < percl < checksum
    # §2.1: checksums cost microseconds for KB-sized objects.
    assert checksum > 5 * percl
    benchmark.extra_info["latency_ladder_ns"] = {
        m: round(by_mech[m]["mean_latency_ns"], 1) for m in MECHANISMS
    }

"""Ablation (§2.1): the software atomicity mechanisms SABRes replace.

Pilaf's checksums cost ~a dozen CPU cycles per byte; FaRM's
per-cache-line versions are far cheaper but still scale with object
size and break zero-copy.  LightSABRes remove the check entirely.
"""

from conftest import bench_scale, run_once, show

from repro.harness.report import format_table, scaled_duration
from repro.workloads.microbench import MicrobenchConfig, run_microbench

MECHANISMS = ("sabre", "percl_versions", "checksum")


def _run(mechanism: str, scale: float):
    result = run_microbench(
        MicrobenchConfig(
            mechanism=mechanism,
            object_size=2048,
            n_objects=256,
            readers=2,
            duration_ns=scaled_duration(80_000.0, scale),
            warmup_ns=10_000.0,
        )
    )
    return {
        "mechanism": mechanism,
        "mean_latency_ns": result.mean_op_latency_ns,
        "goodput_gbps": result.goodput_gbps,
    }


def _sweep(scale: float):
    return [_run(m, scale) for m in MECHANISMS]


def test_software_mechanism_ladder(benchmark, scale):
    rows = run_once(benchmark, _sweep, bench_scale())
    show(
        "Ablation: atomicity mechanism cost ladder (2 KB objects)",
        format_table(("mechanism", "mean_latency_ns", "goodput_gbps"), rows),
    )
    by_mech = {r["mechanism"]: r for r in rows}
    sabre = by_mech["sabre"]["mean_latency_ns"]
    percl = by_mech["percl_versions"]["mean_latency_ns"]
    checksum = by_mech["checksum"]["mean_latency_ns"]
    assert sabre < percl < checksum
    # §2.1: checksums cost microseconds for KB-sized objects.
    assert checksum > 5 * percl
    benchmark.extra_info["latency_ladder_ns"] = {
        m: round(by_mech[m]["mean_latency_ns"], 1) for m in MECHANISMS
    }

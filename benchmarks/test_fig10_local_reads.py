"""Figure 10: FaRM local read throughput, unmodified store vs the
per-cache-line-versions layout.

Paper claim: keeping the object store unmodified (which SABRes enable)
speeds up local reads by 20 % (128 B), 53 % (1 KB), up to 2.1x (8 KB).
"""

from conftest import run_once, show

from repro.harness.fig10 import run_fig10
from repro.harness.report import format_table


def test_fig10_local_reads(benchmark, scale):
    headers, rows = run_once(benchmark, run_fig10, scale=scale)
    show("Fig. 10: local read throughput (GB/s)", format_table(headers, rows))
    by_size = {r["object_size"]: r for r in rows}
    assert 1.05 <= by_size[128]["speedup"] <= 1.5  # paper: 1.20
    assert 1.2 <= by_size[1024]["speedup"] <= 1.8  # paper: 1.53
    assert 1.6 <= by_size[8192]["speedup"] <= 2.6  # paper: 2.1
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups)
    benchmark.extra_info["speedup_by_size"] = {
        s: round(by_size[s]["speedup"], 2) for s in (128, 1024, 8192)
    }
    benchmark.extra_info["paper_bands"] = "1.20x / 1.53x / 2.1x"
